"""Schema objects: column and table definitions plus schema inference.

The catalog describes base tables (name, columns, optional unique key).
Rule T4/T5 in the paper require the outer query to have a unique key; the
precondition is checked against this catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .expressions import Col, ScalarExpr
from .operators import (
    Aggregate,
    Alias,
    Distinct,
    Join,
    Limit,
    OuterApply,
    Project,
    RelExpr,
    Select,
    Sort,
    Table,
)


@dataclass(frozen=True)
class ColumnDef:
    """A column definition in a base table."""

    name: str
    type: str = "any"  # one of: int, float, str, bool, any


@dataclass
class TableDef:
    """A base table definition."""

    name: str
    columns: list[ColumnDef]
    key: tuple[str, ...] = ()

    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]

    def has_column(self, name: str) -> bool:
        return any(col.name == name for col in self.columns)


@dataclass
class Catalog:
    """A collection of table definitions."""

    tables: dict[str, TableDef] = field(default_factory=dict)

    def add(self, table: TableDef) -> None:
        self.tables[table.name.lower()] = table

    def define(self, name: str, columns: list[str], key: tuple[str, ...] = ()) -> TableDef:
        table = TableDef(name=name, columns=[ColumnDef(c) for c in columns], key=key)
        self.add(table)
        return table

    def get(self, name: str) -> TableDef:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise KeyError(f"unknown table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self.tables

    @classmethod
    def from_dict(cls, spec: dict) -> "Catalog":
        """Build a catalog from a schema spec mapping.

        The spec is the documented CLI/corpus schema format::

            {"board": {"columns": ["id", "rnd_id", "p1"], "key": ["id"]}}

        Columns are names, or ``{"name": ..., "type": ...}`` mappings when a
        column type matters.  Malformed specs raise :class:`ValueError` with
        the offending table named.
        """
        if not isinstance(spec, dict):
            raise ValueError(
                f"schema spec must be a mapping of table name to table spec, "
                f"got {type(spec).__name__}"
            )
        catalog = cls()
        for name, table in spec.items():
            if not isinstance(table, dict):
                raise ValueError(
                    f"table {name!r}: expected a mapping with 'columns', "
                    f"got {type(table).__name__}"
                )
            unknown = set(table) - {"columns", "key"}
            if unknown:
                raise ValueError(f"table {name!r}: unknown field(s) {sorted(unknown)}")
            raw_columns = table.get("columns")
            if not isinstance(raw_columns, (list, tuple)) or not raw_columns:
                raise ValueError(f"table {name!r}: 'columns' must be a non-empty list")
            columns: list[ColumnDef] = []
            for entry in raw_columns:
                if isinstance(entry, str):
                    columns.append(ColumnDef(entry))
                elif isinstance(entry, dict) and isinstance(entry.get("name"), str):
                    columns.append(ColumnDef(entry["name"], entry.get("type", "any")))
                else:
                    raise ValueError(
                        f"table {name!r}: column entries must be names or "
                        f"{{'name': ..., 'type': ...}} mappings, got {entry!r}"
                    )
            key = table.get("key", ())
            if isinstance(key, str) or not all(isinstance(k, str) for k in key):
                raise ValueError(f"table {name!r}: 'key' must be a list of column names")
            column_names = [col.name for col in columns]
            missing = [k for k in key if k not in column_names]
            if missing:
                raise ValueError(
                    f"table {name!r}: key column(s) {missing} not in columns"
                )
            catalog.add(TableDef(name=name, columns=columns, key=tuple(key)))
        return catalog

    @classmethod
    def from_json_file(cls, path) -> "Catalog":
        """Load a catalog from a JSON schema file (the ``--schema`` format)."""
        import json

        with open(path) as handle:
            try:
                spec = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: not valid JSON: {exc}") from exc
        try:
            return cls.from_dict(spec)
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from exc

    def to_dict(self) -> dict:
        """The inverse of :meth:`from_dict`; stable for hashing/caching."""
        spec: dict = {}
        for table in self.tables.values():
            spec[table.name] = {
                "columns": [
                    col.name
                    if col.type == "any"
                    else {"name": col.name, "type": col.type}
                    for col in table.columns
                ],
                "key": list(table.key),
            }
        return spec


def output_columns(expr: RelExpr, catalog: Catalog) -> list[str]:
    """Infer the output column names of a relational expression."""
    if isinstance(expr, Table):
        return catalog.get(expr.name).column_names()
    if isinstance(expr, (Select, Sort, Distinct, Limit, Alias)):
        return output_columns(expr.child, catalog)
    if isinstance(expr, Project):
        return [item.output_name for item in expr.items]
    if isinstance(expr, (Join, OuterApply)):
        left = output_columns(expr.left, catalog)
        right = output_columns(expr.right, catalog)
        merged = list(left)
        for name in right:
            if name not in merged:
                merged.append(name)
        return merged
    if isinstance(expr, Aggregate):
        names = []
        for group in expr.group_by:
            names.append(group.name if isinstance(group, Col) else str(group))
        names.extend(item.output_name for item in expr.aggs)
        return names
    raise TypeError(f"cannot infer schema of {type(expr).__name__}")


def has_unique_key(expr: RelExpr, catalog: Catalog) -> bool:
    """Check the precondition of rules T4.1/T5.2: the input has a key.

    Conservative: true when the expression is (a chain of key-preserving
    operators over) a single base table that declares a key, and any
    projection retains all key columns.  Unknown tables (e.g. temporary
    tables registered at run time) have no known key.
    """
    if isinstance(expr, Table):
        if expr.name not in catalog:
            return False
        return bool(catalog.get(expr.name).key)
    if isinstance(expr, (Select, Sort, Distinct, Limit, Alias)):
        return has_unique_key(expr.child, catalog)
    if isinstance(expr, Project):
        key = _key_of(expr.child, catalog)
        if key is None:
            return False
        retained = set()
        for item in expr.items:
            if isinstance(item.expr, Col):
                retained.add(item.expr.name)
        return set(key) <= retained
    return False


def _key_of(expr: RelExpr, catalog: Catalog) -> tuple[str, ...] | None:
    if isinstance(expr, Table):
        if expr.name not in catalog:
            return None
        key = catalog.get(expr.name).key
        return key or None
    if isinstance(expr, (Select, Sort, Distinct, Limit, Alias)):
        return _key_of(expr.child, catalog)
    return None


def key_of(expr: RelExpr, catalog: Catalog) -> tuple[str, ...] | None:
    """Return the unique key columns of an expression, or ``None``."""
    return _key_of(expr, catalog)
