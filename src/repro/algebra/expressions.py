"""Scalar expression trees used inside relational algebra operators.

These are the expressions appearing in selection predicates, projection
lists, join conditions and aggregate arguments.  All nodes are immutable
(frozen dataclasses over tuples) so that algebra trees can be hashed,
compared structurally, and shared inside the ee-DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class ScalarExpr:
    """Base class for scalar expressions."""

    def children(self) -> tuple["ScalarExpr", ...]:
        return ()


@dataclass(frozen=True)
class Lit(ScalarExpr):
    """A literal constant."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        return str(self.value)


@dataclass(frozen=True)
class Col(ScalarExpr):
    """A column reference, optionally qualified: ``Col('rnd_id', 'b')``."""

    name: str
    qualifier: str | None = None

    def __str__(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Param(ScalarExpr):
    """A query parameter bound at execution time (e.g. a program variable)."""

    name: str

    def __str__(self) -> str:
        return f":{self.name}"


@dataclass(frozen=True)
class BinOp(ScalarExpr):
    """A binary operation: comparison, arithmetic, or boolean connective."""

    op: str
    left: ScalarExpr
    right: ScalarExpr

    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(ScalarExpr):
    """A unary operation: ``NOT x`` or ``-x``."""

    op: str
    operand: ScalarExpr

    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class Func(ScalarExpr):
    """A scalar function call such as ``GREATEST(a, b)`` or ``UPPER(s)``."""

    name: str
    args: tuple[ScalarExpr, ...] = ()

    def children(self) -> tuple[ScalarExpr, ...]:
        return self.args

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.name}({rendered})"


@dataclass(frozen=True)
class AggCall(ScalarExpr):
    """An aggregate function call inside a γ operator.

    ``arg`` is ``None`` for ``COUNT(*)``.
    """

    func: str
    arg: ScalarExpr | None = None
    distinct: bool = False

    def children(self) -> tuple[ScalarExpr, ...]:
        if self.arg is None:
            return ()
        return (self.arg,)

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.func.upper()}({inner})"


@dataclass(frozen=True)
class CaseWhen(ScalarExpr):
    """``CASE WHEN cond THEN a ELSE b END`` — the SQL form of the ``?`` node."""

    cond: ScalarExpr
    if_true: ScalarExpr
    if_false: ScalarExpr

    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.cond, self.if_true, self.if_false)

    def __str__(self) -> str:
        return f"CASE WHEN {self.cond} THEN {self.if_true} ELSE {self.if_false} END"


@dataclass(frozen=True)
class ExistsExpr(ScalarExpr):
    """``EXISTS (subquery)`` or ``NOT EXISTS`` when ``negated``.

    ``query`` is a relational algebra node; kept as ``Any`` to avoid the
    circular import with :mod:`repro.algebra.operators`.
    """

    query: Any
    negated: bool = False

    def __str__(self) -> str:
        prefix = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{prefix}({self.query})"


@dataclass(frozen=True)
class ScalarSubquery(ScalarExpr):
    """A scalar subquery producing a single value."""

    query: Any = field(hash=False, compare=True, default=None)

    def __str__(self) -> str:
        return f"({self.query})"


# ----------------------------------------------------------------------
# Helpers


def conjoin(*preds: ScalarExpr | None) -> ScalarExpr | None:
    """AND together the non-``None`` predicates (returns ``None`` if empty)."""
    parts = [p for p in preds if p is not None]
    if not parts:
        return None
    result = parts[0]
    for part in parts[1:]:
        result = BinOp("AND", result, part)
    return result


def walk_scalar(expr: ScalarExpr):
    """Yield ``expr`` and every scalar sub-expression, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk_scalar(child)


def columns_of(expr: ScalarExpr) -> set[Col]:
    """Return the set of column references inside a scalar expression."""
    return {node for node in walk_scalar(expr) if isinstance(node, Col)}


def params_of(expr: ScalarExpr) -> set[str]:
    """Return the names of parameters referenced inside a scalar expression."""
    return {node.name for node in walk_scalar(expr) if isinstance(node, Param)}


def substitute_params(expr: ScalarExpr, bindings: dict[str, ScalarExpr]) -> ScalarExpr:
    """Return a copy of ``expr`` with :class:`Param` nodes replaced."""
    if isinstance(expr, Param) and expr.name in bindings:
        return bindings[expr.name]
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            substitute_params(expr.left, bindings),
            substitute_params(expr.right, bindings),
        )
    if isinstance(expr, UnOp):
        return UnOp(expr.op, substitute_params(expr.operand, bindings))
    if isinstance(expr, Func):
        return Func(expr.name, tuple(substitute_params(a, bindings) for a in expr.args))
    if isinstance(expr, AggCall):
        arg = None if expr.arg is None else substitute_params(expr.arg, bindings)
        return AggCall(expr.func, arg, expr.distinct)
    if isinstance(expr, CaseWhen):
        return CaseWhen(
            substitute_params(expr.cond, bindings),
            substitute_params(expr.if_true, bindings),
            substitute_params(expr.if_false, bindings),
        )
    return expr


def rename_columns(expr: ScalarExpr, mapping: dict[str, str]) -> ScalarExpr:
    """Return a copy of ``expr`` with column names rewritten per ``mapping``.

    Keys may be bare names (``"x"``) or qualified (``"t.x"``); qualified keys
    take precedence.
    """
    if isinstance(expr, Col):
        qualified = f"{expr.qualifier}.{expr.name}" if expr.qualifier else expr.name
        target = mapping.get(qualified, mapping.get(expr.name))
        if target is None:
            return expr
        if "." in target:
            qualifier, name = target.split(".", 1)
            return Col(name, qualifier)
        return Col(target)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            rename_columns(expr.left, mapping),
            rename_columns(expr.right, mapping),
        )
    if isinstance(expr, UnOp):
        return UnOp(expr.op, rename_columns(expr.operand, mapping))
    if isinstance(expr, Func):
        return Func(expr.name, tuple(rename_columns(a, mapping) for a in expr.args))
    if isinstance(expr, AggCall):
        arg = None if expr.arg is None else rename_columns(expr.arg, mapping)
        return AggCall(expr.func, arg, expr.distinct)
    if isinstance(expr, CaseWhen):
        return CaseWhen(
            rename_columns(expr.cond, mapping),
            rename_columns(expr.if_true, mapping),
            rename_columns(expr.if_false, mapping),
        )
    return expr
