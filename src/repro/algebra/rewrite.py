"""Structural rewriting utilities over relational algebra trees."""

from __future__ import annotations

from typing import Callable

from .expressions import (
    Lit,
    Param,
    ScalarExpr,
    substitute_params,
    walk_scalar,
)
from .operators import (
    AggItem,
    Aggregate,
    Alias,
    Distinct,
    Join,
    Limit,
    OuterApply,
    Project,
    ProjectItem,
    RelExpr,
    Select,
    Sort,
    SortKey,
    Table,
)


def scalar_exprs_of(node: RelExpr) -> list[ScalarExpr]:
    """The scalar expressions directly embedded in one relational node."""
    if isinstance(node, Select):
        return [node.pred]
    if isinstance(node, Project):
        return [item.expr for item in node.items]
    if isinstance(node, Join):
        return [node.pred] if node.pred is not None else []
    if isinstance(node, Aggregate):
        exprs = list(node.group_by)
        exprs.extend(item.call for item in node.aggs)
        return exprs
    if isinstance(node, Sort):
        return [key.expr for key in node.keys]
    return []


def map_scalars(node: RelExpr, fn: Callable[[ScalarExpr], ScalarExpr]) -> RelExpr:
    """Rebuild a relational tree applying ``fn`` to every scalar expression."""
    if isinstance(node, Table):
        return node
    if isinstance(node, Select):
        return Select(map_scalars(node.child, fn), fn(node.pred))
    if isinstance(node, Project):
        items = tuple(ProjectItem(fn(i.expr), i.alias) for i in node.items)
        return Project(map_scalars(node.child, fn), items)
    if isinstance(node, Join):
        pred = fn(node.pred) if node.pred is not None else None
        return Join(map_scalars(node.left, fn), map_scalars(node.right, fn), pred, node.kind)
    if isinstance(node, Aggregate):
        group_by = tuple(fn(g) for g in node.group_by)
        aggs = tuple(AggItem(fn(a.call), a.alias) for a in node.aggs)
        return Aggregate(map_scalars(node.child, fn), group_by, aggs)
    if isinstance(node, Sort):
        keys = tuple(SortKey(fn(k.expr), k.ascending) for k in node.keys)
        return Sort(map_scalars(node.child, fn), keys)
    if isinstance(node, Distinct):
        return Distinct(map_scalars(node.child, fn))
    if isinstance(node, Limit):
        return Limit(map_scalars(node.child, fn), node.count)
    if isinstance(node, OuterApply):
        return OuterApply(map_scalars(node.left, fn), map_scalars(node.right, fn))
    if isinstance(node, Alias):
        return Alias(map_scalars(node.child, fn), node.name)
    raise TypeError(f"cannot rewrite {type(node).__name__}")


def query_params(node: RelExpr) -> set[str]:
    """All :name parameters appearing anywhere in a relational tree."""
    names: set[str] = set()

    def collect(rel: RelExpr) -> None:
        for scalar in scalar_exprs_of(rel):
            for sub in walk_scalar(scalar):
                if isinstance(sub, Param):
                    names.add(sub.name)
        for child in rel.children():
            collect(child)

    collect(node)
    return names


def bind_rel_params(node: RelExpr, bindings: dict[str, ScalarExpr]) -> RelExpr:
    """Substitute parameters throughout a relational tree."""
    return map_scalars(node, lambda e: substitute_params(e, bindings))


def bind_rel_literals(node: RelExpr, values: dict[str, object]) -> RelExpr:
    """Substitute parameters with literal values."""
    bindings = {name: Lit(value) for name, value in values.items()}
    return bind_rel_params(node, bindings)
