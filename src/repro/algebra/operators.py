"""Extended relational algebra operators (Section 3.2.1 of the paper).

The operator set is the paper's: selection σ, projection-without-duplicate-
elimination π (order preserving), join ⋈, aggregation γ, sorting τ,
duplicate elimination δ, plus the OUTER APPLY construct used by rule T7 and
LIMIT used for argmax extraction (Appendix B).  All nodes are immutable and
structurally hashable.
"""

from __future__ import annotations

from dataclasses import dataclass

from .expressions import AggCall, Col, ScalarExpr


class RelExpr:
    """Base class for relational algebra expressions."""

    def children(self) -> tuple["RelExpr", ...]:
        return ()


@dataclass(frozen=True)
class Table(RelExpr):
    """A base relation scan, optionally aliased."""

    name: str
    alias: str | None = None

    def __str__(self) -> str:
        if self.alias and self.alias != self.name:
            return f"{self.name} AS {self.alias}"
        return self.name


@dataclass(frozen=True)
class Select(RelExpr):
    """σ — selection."""

    child: RelExpr
    pred: ScalarExpr

    def children(self) -> tuple[RelExpr, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"σ[{self.pred}]({self.child})"


@dataclass(frozen=True)
class ProjectItem:
    """One output column of a projection: expression plus optional alias."""

    expr: ScalarExpr
    alias: str | None = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, Col):
            return self.expr.name
        return str(self.expr)

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expr} AS {self.alias}"
        return str(self.expr)


@dataclass(frozen=True)
class Project(RelExpr):
    """π — projection *without* duplicate elimination, order preserving."""

    child: RelExpr
    items: tuple[ProjectItem, ...]

    def children(self) -> tuple[RelExpr, ...]:
        return (self.child,)

    def __str__(self) -> str:
        cols = ", ".join(str(item) for item in self.items)
        return f"π[{cols}]({self.child})"


@dataclass(frozen=True)
class Join(RelExpr):
    """⋈ — join; ``kind`` is ``inner``, ``left``, or ``cross``."""

    left: RelExpr
    right: RelExpr
    pred: ScalarExpr | None = None
    kind: str = "inner"

    def children(self) -> tuple[RelExpr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        symbol = {"inner": "⋈", "left": "⟕", "cross": "×"}.get(self.kind, "⋈")
        if self.pred is None:
            return f"({self.left} {symbol} {self.right})"
        return f"({self.left} {symbol}[{self.pred}] {self.right})"


@dataclass(frozen=True)
class AggItem:
    """One aggregate output of a γ operator."""

    call: AggCall
    alias: str | None = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        return str(self.call)

    def __str__(self) -> str:
        if self.alias:
            return f"{self.call} AS {self.alias}"
        return str(self.call)


@dataclass(frozen=True)
class Aggregate(RelExpr):
    """γ — (grouped) aggregation; ``group_by`` may be empty."""

    child: RelExpr
    group_by: tuple[ScalarExpr, ...]
    aggs: tuple[AggItem, ...]

    def children(self) -> tuple[RelExpr, ...]:
        return (self.child,)

    def __str__(self) -> str:
        groups = ", ".join(str(g) for g in self.group_by)
        calls = ", ".join(str(a) for a in self.aggs)
        return f"γ[{groups}; {calls}]({self.child})"


@dataclass(frozen=True)
class SortKey:
    expr: ScalarExpr
    ascending: bool = True

    def __str__(self) -> str:
        return f"{self.expr} {'ASC' if self.ascending else 'DESC'}"


@dataclass(frozen=True)
class Sort(RelExpr):
    """τ — sorting."""

    child: RelExpr
    keys: tuple[SortKey, ...]

    def children(self) -> tuple[RelExpr, ...]:
        return (self.child,)

    def __str__(self) -> str:
        keys = ", ".join(str(k) for k in self.keys)
        return f"τ[{keys}]({self.child})"


@dataclass(frozen=True)
class Distinct(RelExpr):
    """δ — duplicate elimination."""

    child: RelExpr

    def children(self) -> tuple[RelExpr, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"δ({self.child})"


@dataclass(frozen=True)
class Limit(RelExpr):
    """LIMIT — used when translating argmax/argmin via ORDER BY + LIMIT."""

    child: RelExpr
    count: int

    def children(self) -> tuple[RelExpr, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"limit[{self.count}]({self.child})"


@dataclass(frozen=True)
class Alias(RelExpr):
    """A named derived table: ``(subquery) AS name``.

    Row values pass through unchanged; the alias additionally qualifies the
    output columns so correlated subqueries and join predicates can refer to
    them unambiguously.
    """

    child: RelExpr
    name: str

    def children(self) -> tuple[RelExpr, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"({self.child}) AS {self.name}"


@dataclass(frozen=True)
class OuterApply(RelExpr):
    """OUTER APPLY (Appendix B, rule T7).

    For each row of ``left``, evaluates ``right`` (whose predicate may
    reference columns of ``left``) and concatenates; when ``right`` is empty
    the left row is padded with NULLs.  Equivalent to LATERAL LEFT JOIN.
    """

    left: RelExpr
    right: RelExpr

    def children(self) -> tuple[RelExpr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} OApply {self.right})"


# ----------------------------------------------------------------------
# Traversal and rewriting helpers


def walk_relational(expr: RelExpr):
    """Yield ``expr`` and every relational sub-expression, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk_relational(child)


def base_tables(expr: RelExpr) -> set[str]:
    """Return the names of all base tables referenced by an expression."""
    return {node.name for node in walk_relational(expr) if isinstance(node, Table)}


def replace_child(expr: RelExpr, old: RelExpr, new: RelExpr) -> RelExpr:
    """Return a copy of ``expr`` with one direct child replaced."""
    if isinstance(expr, Select):
        return Select(new if expr.child is old else expr.child, expr.pred)
    if isinstance(expr, Project):
        return Project(new if expr.child is old else expr.child, expr.items)
    if isinstance(expr, Join):
        left = new if expr.left is old else expr.left
        right = new if expr.right is old else expr.right
        return Join(left, right, expr.pred, expr.kind)
    if isinstance(expr, Aggregate):
        return Aggregate(new if expr.child is old else expr.child, expr.group_by, expr.aggs)
    if isinstance(expr, Sort):
        return Sort(new if expr.child is old else expr.child, expr.keys)
    if isinstance(expr, Distinct):
        return Distinct(new if expr.child is old else expr.child)
    if isinstance(expr, Limit):
        return Limit(new if expr.child is old else expr.child, expr.count)
    if isinstance(expr, OuterApply):
        left = new if expr.left is old else expr.left
        right = new if expr.right is old else expr.right
        return OuterApply(left, right)
    if isinstance(expr, Alias):
        return Alias(new if expr.child is old else expr.child, expr.name)
    raise TypeError(f"cannot replace child of {type(expr).__name__}")


def strip_sort(expr: RelExpr) -> RelExpr:
    """Remove τ operators feeding an order-insensitive consumer.

    A fold with a commutative ⊕ (SUM/COUNT/MAX/MIN), a set insert, or an
    EXISTS test ignores iteration order, so a τ in its source is
    semantically dead — and it would render as an ORDER BY over columns the
    enclosing aggregate/DISTINCT block no longer exposes, which engines
    reject.  Recurses through the order-preserving unary operators so a τ
    buried under a σ is found too.
    """
    if isinstance(expr, Sort):
        return strip_sort(expr.child)
    if isinstance(expr, Select):
        child = strip_sort(expr.child)
        return expr if child is expr.child else Select(child, expr.pred)
    if isinstance(expr, Alias):
        child = strip_sort(expr.child)
        return expr if child is expr.child else Alias(child, expr.name)
    return expr
