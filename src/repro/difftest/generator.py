"""Seeded, grammar-directed random MiniJava program generator.

Each :class:`GeneratedCase` is a self-contained differential-testing input:
a random schema, a random MiniJava function exercising the constructs the
paper analyses (cursor loops over ``executeQuery``, nested/sequenced loops,
if/else inside loops, scalar and collection accumulators, aggregations,
string concatenation, early returns), and the set of columns the function
reads arithmetically (which the instance generator must keep NOT NULL so
the imperative semantics stay defined).

Determinism contract: all choices come from the ``random.Random`` instance
passed in, so a fixed seed reproduces the exact same case stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..algebra import Catalog

#: Name pools.  Fixed and ordered so generation is reproducible.
_TABLE_NAMES = ["orders", "items", "events", "players", "visits", "reviews"]
_INT_COLUMNS = ["amount", "qty", "score", "price", "rank", "age", "hits"]
_STR_COLUMNS = ["name", "tag", "city"]
_STR_POOL = ["a", "b", "north", "south", "x"]


@dataclass
class TableSpec:
    """One random base table. ``key`` is empty when duplicate ids are
    allowed (the catalog then declares no unique key, so rewrites cannot
    assume uniqueness — this is how the fuzzer covers duplicate-key data
    without violating declared invariants)."""

    name: str
    columns: list[str]
    key: tuple[str, ...]
    str_columns: list[str] = field(default_factory=list)

    @property
    def int_columns(self) -> list[str]:
        return [c for c in self.columns if c != "id" and c not in self.str_columns]

    @property
    def entity(self) -> str:
        """The HQL-style entity name (``orders`` → ``Orders``)."""
        return self.name[0].upper() + self.name[1:]


@dataclass
class GeneratedCase:
    """A complete differential-testing input (program + schema + data)."""

    case_id: int
    tables: list[TableSpec]
    source: str
    function: str = "f"
    #: table name → columns the program compares/adds arithmetically; the
    #: instance generator never puts NULL in these.
    notnull: dict[str, list[str]] = field(default_factory=dict)
    #: table name → rows (filled in by :mod:`repro.difftest.dbgen` or a
    #: corpus file).
    rows: dict[str, list[dict]] = field(default_factory=dict)

    def catalog(self) -> Catalog:
        return Catalog.from_dict(
            {
                table.name: {"columns": list(table.columns), "key": list(table.key)}
                for table in self.tables
            }
        )


# ----------------------------------------------------------------------
# Generation


def _getter(column: str) -> str:
    return "get" + column[0].upper() + column[1:]


class _Emitter:
    """Indentation-aware source assembly."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._depth = 0

    def line(self, text: str) -> None:
        self._lines.append("    " * self._depth + text)

    def open(self, text: str) -> None:
        self.line(text + " {")
        self._depth += 1

    def close(self) -> None:
        self._depth -= 1
        self.line("}")

    def source(self) -> str:
        return "\n".join(self._lines)


@dataclass
class _Accumulator:
    """One accumulator variable updated inside a loop."""

    kind: str
    var: str
    init_lines: list[str]
    update_lines: list[str]
    result_vars: list[str]
    needs_guard: bool = False


class CaseGenerator:
    """Draws random cases from a ``random.Random`` stream."""

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._acc_counter = 0
        self._trailer: list[str] = []

    # ------------------------------------------------------------------
    # Schema

    def schema(self) -> list[TableSpec]:
        rng = self._rng
        count = rng.choice([1, 1, 2, 2, 3])
        names = rng.sample(_TABLE_NAMES, count)
        tables = []
        for index, name in enumerate(names):
            ints = rng.sample(_INT_COLUMNS, rng.randint(2, 4))
            strs = rng.sample(_STR_COLUMNS, rng.choice([0, 0, 1]))
            columns = ["id"] + ints + strs
            if index > 0:
                columns.append("fk")  # join column back to the first table
            # ~20% of tables allow duplicate ids: declared keyless.
            key = () if rng.random() < 0.2 else ("id",)
            tables.append(TableSpec(name, columns, key, str_columns=strs))
        return tables

    # ------------------------------------------------------------------
    # Programs

    def case(self, case_id: int) -> GeneratedCase:
        self._acc_counter = 0
        self._trailer = []
        tables = self.schema()
        notnull: dict[str, set[str]] = {t.name: set() for t in tables}
        emit = _Emitter()
        emit.open("f()")
        shape = self._rng.choices(
            [
                "single",
                "sequenced",
                "nested",
                "cursor_while",
                "early_return",
                "copy_chain",
                "dead_branch",
                "local_alias",
            ],
            weights=[34, 12, 15, 8, 12, 7, 7, 5],
        )[0]
        if shape == "single":
            results = self._single_loop(emit, tables[0], notnull)
        elif shape == "sequenced":
            results = self._single_loop(emit, tables[0], notnull)
            results += self._single_loop(emit, tables[-1], notnull, suffix="1")
        elif shape == "nested":
            results = self._nested_loops(emit, tables, notnull)
        elif shape == "cursor_while":
            results = self._cursor_while(emit, tables[0], notnull)
        elif shape == "copy_chain":
            results = self._copy_chain(emit, tables[0], notnull)
        elif shape == "dead_branch":
            results = self._dead_branch(emit, tables[0], notnull)
        elif shape == "local_alias":
            results = self._local_alias(emit, tables[0], notnull)
        else:
            results = self._single_loop(
                emit, tables[0], notnull, early_return=True
            )
        emit.line(f"return {self._combine(results)};")
        emit.close()
        source = emit.source()
        if self._trailer:
            source += "\n" + "\n".join(self._trailer)
        return GeneratedCase(
            case_id=case_id,
            tables=tables,
            source=source,
            notnull={name: sorted(cols) for name, cols in notnull.items()},
        )

    @staticmethod
    def _combine(results: list[str]) -> str:
        """Fold every observable variable into one return expression."""
        if not results:
            return "0"
        combined = results[-1]
        for var in reversed(results[:-1]):
            combined = f"new Pair({var}, {combined})"
        return combined

    # ------------------------------------------------------------------
    # Loop shapes

    def _query_text(
        self, table: TableSpec, alias: str, notnull: dict[str, set[str]]
    ) -> str:
        rng = self._rng
        text = f"from {table.entity} as {alias}"
        if rng.random() < 0.55 and table.int_columns:
            column = rng.choice(table.int_columns)
            op = rng.choice([">", "<", ">=", "=", "!="])
            text += f" where {alias}.{column} {op} {rng.randint(0, 20)}"
            if rng.random() < 0.3:
                other = rng.choice(table.int_columns)
                connective = rng.choice(["and", "or"])
                text += (
                    f" {connective} {alias}.{other} "
                    f"{rng.choice(['>', '<'])} {rng.randint(0, 20)}"
                )
        if rng.random() < 0.25:
            column = rng.choice(table.int_columns)
            direction = rng.choice(["asc", "desc"])
            text += f" order by {alias}.{column} {direction}"
            # A non-unique sort key makes result order underdetermined in
            # real SQL; the engine's stable sort keeps both runs aligned,
            # and ties are broken deterministically by insertion order.
        return text

    def _single_loop(
        self,
        emit: _Emitter,
        table: TableSpec,
        notnull: dict[str, set[str]],
        suffix: str = "0",
        early_return: bool = False,
    ) -> list[str]:
        rng = self._rng
        cursor = f"t{suffix}"
        accs = self._pick_accumulators(table, cursor, notnull)
        for acc in accs:
            for line in acc.init_lines:
                emit.line(line)
        query = self._query_text(table, f"a{suffix}", notnull)
        emit.line(f'q{suffix} = executeQuery("{query}");')
        emit.open(f"for ({cursor} : q{suffix})")
        self._emit_body(emit, table, cursor, accs, notnull)
        if rng.random() < 0.12:
            cond = self._condition(table, cursor, notnull)
            emit.open(f"if ({cond})")
            emit.line("break;")
            emit.close()
        if early_return:
            cond = self._condition(table, cursor, notnull)
            results = [v for acc in accs for v in acc.result_vars]
            emit.open(f"if ({cond})")
            emit.line(f"return {self._combine(results)};")
            emit.close()
        emit.close()
        return [v for acc in accs for v in acc.result_vars]

    def _cursor_while(
        self, emit: _Emitter, table: TableSpec, notnull: dict[str, set[str]]
    ) -> list[str]:
        cursor = "rs"
        accs = self._pick_accumulators(table, cursor, notnull, limit=2)
        for acc in accs:
            for line in acc.init_lines:
                emit.line(line)
        query = self._query_text(table, "a0", notnull)
        emit.line(f'rs = executeQueryCursor("{query}");')
        emit.open("while (rs.next())")
        self._emit_body(emit, table, cursor, accs, notnull)
        emit.close()
        return [v for acc in accs for v in acc.result_vars]

    def _copy_chain(
        self, emit: _Emitter, table: TableSpec, notnull: dict[str, set[str]]
    ) -> list[str]:
        """Cursor ``while`` drained through a copy of the opening variable —
        the shape only SSA-era cursor-chain resolution normalises."""
        cursor = "rs"
        accs = self._pick_accumulators(table, cursor, notnull, limit=2)
        for acc in accs:
            for line in acc.init_lines:
                emit.line(line)
        query = self._query_text(table, "a0", notnull)
        emit.line(f'q0 = executeQueryCursor("{query}");')
        emit.line("rs = q0;")
        emit.open("while (rs.next())")
        self._emit_body(emit, table, cursor, accs, notnull)
        emit.close()
        return [v for acc in accs for v in acc.result_vars]

    def _dead_branch(
        self, emit: _Emitter, table: TableSpec, notnull: dict[str, set[str]]
    ) -> list[str]:
        """A constant-false flag guarding a poison statement inside the
        loop: an undefined call, a database write, or a ``break``.  The
        guard is provably dead, so the poison must never run (keeping the
        raw interpretation defined) — constant propagation plus dead-branch
        pruning is what recovers the extraction."""
        rng = self._rng
        cursor = "t0"
        accs = self._pick_accumulators(table, cursor, notnull, limit=2)
        for acc in accs:
            for line in acc.init_lines:
                emit.line(line)
        flag_style = rng.choice(["bool", "arith"])
        if flag_style == "bool":
            emit.line("legacy = false;")
            guard = "legacy"
        else:
            base = rng.randint(1, 9)
            emit.line(f"legacy = {base} - {base};")
            guard = "legacy > 0"
        query = self._query_text(table, "a0", notnull)
        emit.line(f'q0 = executeQuery("{query}");')
        emit.open(f"for ({cursor} : q0)")
        poison = rng.choice(["call", "update", "break"])
        emit.open(f"if ({guard})")
        if poison == "call":
            emit.line(f"auditRow({cursor});")
        elif poison == "update":
            column = rng.choice(table.int_columns)
            emit.line(
                f'executeUpdate("update {table.name} set {column} = 0");'
            )
        else:
            emit.line("break;")
        emit.close()
        self._emit_body(emit, table, cursor, accs, notnull)
        emit.close()
        return [v for acc in accs for v in acc.result_vars]

    def _local_alias(
        self, emit: _Emitter, table: TableSpec, notnull: dict[str, set[str]]
    ) -> list[str]:
        """The iterated result set is handed, after the loop, to a
        recursive helper that provably neither retains nor mutates it —
        the ``escapes_params``/points-to downgrade scenario."""
        results = self._single_loop(emit, table, notnull)
        emit.line(f"kept = retain(q0, {self._rng.randint(1, 3)});")
        self._trailer.append(
            "retain(c, n) {\n"
            "    if (n > 0) {\n"
            "        return retain(c, n - 1);\n"
            "    }\n"
            "    return 0;\n"
            "}"
        )
        return results + ["kept"]

    def _nested_loops(
        self,
        emit: _Emitter,
        tables: list[TableSpec],
        notnull: dict[str, set[str]],
    ) -> list[str]:
        """Correlated N+1 pattern: inner per-row query keyed on the outer id."""
        rng = self._rng
        outer = tables[0]
        inner = tables[-1] if len(tables) > 1 else tables[0]
        inner_fk = "fk" if "fk" in inner.columns else "id"
        notnull[outer.name].add("id")
        inner_acc = self._pick_accumulators(
            inner, "t1", notnull, limit=1, kinds=["sum", "count", "max"]
        )[0]
        collect = rng.random() < 0.6
        if collect:
            emit.line("out = new ArrayList();")
        else:
            emit.line("grand = 0;")
        emit.line(f'q0 = executeQuery("from {outer.entity} as a0");')
        emit.open("for (t0 : q0)")
        for line in inner_acc.init_lines:
            emit.line(line)
        emit.line(
            f'q1 = executeQuery("select * from {inner.entity} as a1 '
            f'where a1.{inner_fk} = " + t0.getId());'
        )
        emit.open("for (t1 : q1)")
        for line in inner_acc.update_lines:
            emit.line(line)
        emit.close()
        if collect:
            emit.line(f"out.add(new Pair(t0.getId(), {inner_acc.var}));")
        else:
            emit.line(f"grand = grand + {inner_acc.var};")
        emit.close()
        return ["out" if collect else "grand"]

    def _emit_body(
        self,
        emit: _Emitter,
        table: TableSpec,
        cursor: str,
        accs: list[_Accumulator],
        notnull: dict[str, set[str]],
    ) -> None:
        rng = self._rng
        if len(accs) >= 2 and rng.random() < 0.35:
            # if/else splitting two accumulators across branches.
            cond = self._condition(table, cursor, notnull)
            emit.open(f"if ({cond})")
            for line in accs[0].update_lines:
                emit.line(line)
            emit.close()
            emit.open("else")
            for line in accs[1].update_lines:
                emit.line(line)
            emit.close()
            rest = accs[2:]
        else:
            rest = accs
        for acc in rest:
            guarded = acc.needs_guard or rng.random() < 0.4
            if guarded:
                cond = self._condition(table, cursor, notnull)
                emit.open(f"if ({cond})")
            for line in acc.update_lines:
                emit.line(line)
            if guarded:
                emit.close()
        if rng.random() < 0.15:
            # Printed output is always observable (the __out__ stream).
            emit.line(f"println({self._collectable(table, cursor, notnull)});")

    # ------------------------------------------------------------------
    # Accumulators and expressions

    def _pick_accumulators(
        self,
        table: TableSpec,
        cursor: str,
        notnull: dict[str, set[str]],
        limit: int = 3,
        kinds: list[str] | None = None,
    ) -> list[_Accumulator]:
        rng = self._rng
        pool = kinds or [
            "sum",
            "count",
            "max",
            "min",
            "argmax",
            "list",
            "set",
            "concat",
            "exists",
            "last",
            "rows",
        ]
        count = rng.randint(1, limit)
        return [
            self._accumulator(rng.choice(pool), table, cursor, notnull)
            for _ in range(count)
        ]

    def _value_expr(
        self, table: TableSpec, cursor: str, notnull: dict[str, set[str]]
    ) -> str:
        """An integer-valued expression over the cursor row (NOT NULL)."""
        rng = self._rng
        column = rng.choice(table.int_columns)
        notnull[table.name].add(column)
        roll = rng.random()
        if roll < 0.6:
            return f"{cursor}.{_getter(column)}()"
        if roll < 0.8:
            other = rng.choice(table.int_columns)
            notnull[table.name].add(other)
            return f"{cursor}.{_getter(column)}() + {cursor}.{_getter(other)}()"
        other = rng.choice(table.int_columns)
        notnull[table.name].add(other)
        return (
            f"Math.max({cursor}.{_getter(column)}(), {cursor}.{_getter(other)}())"
        )

    def _condition(
        self, table: TableSpec, cursor: str, notnull: dict[str, set[str]]
    ) -> str:
        rng = self._rng
        roll = rng.random()
        if roll < 0.25 and table.str_columns:
            column = rng.choice(table.str_columns)
            notnull[table.name].add(column)
            value = rng.choice(_STR_POOL)
            op = rng.choice(["equals", "!equals"])
            call = f'{cursor}.{_getter(column)}().equals("{value}")'
            return call if op == "equals" else f"!{call}"
        column = rng.choice(table.int_columns)
        notnull[table.name].add(column)
        op = rng.choice([">", "<", ">=", "<=", "==", "!="])
        if roll < 0.75:
            return f"{cursor}.{_getter(column)}() {op} {rng.randint(0, 30)}"
        other = rng.choice(table.int_columns)
        notnull[table.name].add(other)
        return f"{cursor}.{_getter(column)}() {op} {cursor}.{_getter(other)}()"

    def _accumulator(
        self,
        kind: str,
        table: TableSpec,
        cursor: str,
        notnull: dict[str, set[str]],
    ) -> _Accumulator:
        rng = self._rng
        var = f"v{self._acc_counter}"
        self._acc_counter += 1
        if kind == "sum":
            value = self._value_expr(table, cursor, notnull)
            return _Accumulator(
                kind, var, [f"{var} = 0;"], [f"{var} = {var} + {value};"], [var]
            )
        if kind == "count":
            return _Accumulator(
                kind,
                var,
                [f"{var} = 0;"],
                [f"{var} = {var} + 1;"],
                [var],
                needs_guard=rng.random() < 0.7,
            )
        if kind == "max":
            value = self._value_expr(table, cursor, notnull)
            return _Accumulator(
                kind,
                var,
                [f"{var} = 0;"],
                [f"if ({value} > {var}) {{ {var} = {value}; }}"],
                [var],
            )
        if kind == "min":
            value = self._value_expr(table, cursor, notnull)
            return _Accumulator(
                kind,
                var,
                [f"{var} = 1000000;"],
                [f"if ({value} < {var}) {{ {var} = {value}; }}"],
                [var],
            )
        if kind == "argmax":
            column = rng.choice(table.int_columns)
            notnull[table.name].add(column)
            witness = rng.choice([c for c in table.columns if c != column])
            best = f"{var}b"
            return _Accumulator(
                kind,
                var,
                [f"{var} = 0;", f"{best} = null;"],
                [
                    f"if ({cursor}.{_getter(column)}() > {var}) "
                    f"{{ {var} = {cursor}.{_getter(column)}(); "
                    f"{best} = {cursor}.{_getter(witness)}(); }}"
                ],
                [var, best],
            )
        if kind == "list":
            value = self._collectable(table, cursor, notnull)
            return _Accumulator(
                kind,
                var,
                [f"{var} = new ArrayList();"],
                [f"{var}.add({value});"],
                [var],
            )
        if kind == "set":
            value = self._collectable(table, cursor, notnull)
            return _Accumulator(
                kind,
                var,
                [f"{var} = new HashSet();"],
                [f"{var}.add({value});"],
                [var],
            )
        if kind == "concat":
            column = rng.choice(table.columns[1:] or ["id"])
            return _Accumulator(
                kind,
                var,
                [f'{var} = "";'],
                [f'{var} = {var} + {cursor}.{_getter(column)}() + "|";'],
                [var],
            )
        if kind == "exists":
            return _Accumulator(
                kind,
                var,
                [f"{var} = false;"],
                [f"{var} = true;"],
                [var],
                needs_guard=True,
            )
        if kind == "last":
            value = self._collectable(table, cursor, notnull)
            return _Accumulator(
                kind, var, [f"{var} = null;"], [f"{var} = {value};"], [var]
            )
        if kind == "rows":
            # Whole-entity collection — the paper's plain "materialise the
            # query result" pattern (rule T1 territory).
            return _Accumulator(
                kind,
                var,
                [f"{var} = new ArrayList();"],
                [f"{var}.add({cursor});"],
                [var],
            )
        raise ValueError(f"unknown accumulator kind {kind!r}")

    def _collectable(
        self, table: TableSpec, cursor: str, notnull: dict[str, set[str]]
    ) -> str:
        """A value safe to store without arithmetic (may be NULL)."""
        rng = self._rng
        if rng.random() < 0.25:
            return self._value_expr(table, cursor, notnull)
        column = rng.choice(table.columns)
        return f"{cursor}.{_getter(column)}()"


def generate_case(seed: int, case_id: int) -> GeneratedCase:
    """Generate case ``case_id`` of the stream for ``seed``.

    Cases are independent of each other: case ``i`` is identical no matter
    how many other iterations ran, which keeps ``--budget-s`` runs replayable
    case by case.
    """
    rng = random.Random(seed * 1_000_003 + case_id)
    case = CaseGenerator(rng).case(case_id)
    from .dbgen import populate_case

    populate_case(rng, case)
    return case
