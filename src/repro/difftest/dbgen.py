"""Random database instance generation for differential testing.

Instances deliberately stress the data shapes the engine and the rewrite
rules must agree on:

* empty tables (aggregates over zero rows — SQL returns NULL, the
  imperative fold returns its initial value);
* skewed value distributions with many duplicates (grouping, DISTINCT,
  argmax tie-breaking);
* NULLs in every column the program does not use arithmetically (SQL
  three-valued logic vs. the interpreter's Java-like semantics);
* duplicate ids in tables declared keyless (rule T4/T5's unique-key
  precondition must then block order-sensitive rewrites).
"""

from __future__ import annotations

import random

from ..db import Database
from .generator import GeneratedCase, TableSpec, _STR_POOL

#: Skewed integer pool: duplicates are very likely in any non-trivial table.
_INT_POOL = [0, 0, 1, 1, 2, 3, 5, 7, 10, 10, 15, 20, 25, 42, 100, -1, -7]


def _row_count(rng: random.Random) -> int:
    roll = rng.random()
    if roll < 0.12:
        return 0
    if roll < 0.62:
        return rng.randint(1, 6)
    return rng.randint(7, 25)


def _int_value(rng: random.Random) -> int:
    if rng.random() < 0.7:
        return rng.choice(_INT_POOL)
    return rng.randint(-50, 120)


def generate_rows(
    rng: random.Random, table: TableSpec, notnull: list[str], fk_ids: list[int]
) -> list[dict]:
    count = _row_count(rng)
    rows = []
    for index in range(count):
        row: dict = {}
        if table.key:
            row["id"] = index + 1
        else:
            # Keyless table: duplicate ids on purpose.
            row["id"] = rng.randint(1, max(2, count // 2 + 1))
        for column in table.int_columns:
            if column not in notnull and rng.random() < 0.15:
                row[column] = None
            else:
                row[column] = _int_value(rng)
        for column in table.str_columns:
            if column not in notnull and rng.random() < 0.15:
                row[column] = None
            else:
                row[column] = rng.choice(_STR_POOL)
        if "fk" in table.columns:
            # Point at a real outer id most of the time; dangle sometimes.
            if fk_ids and rng.random() < 0.85:
                row["fk"] = rng.choice(fk_ids)
            else:
                row["fk"] = rng.randint(1, 30)
        rows.append(row)
    return rows


def populate_case(rng: random.Random, case: GeneratedCase) -> None:
    """Fill ``case.rows`` with a random instance for its schema."""
    fk_ids: list[int] = []
    for table in case.tables:
        rows = generate_rows(
            rng, table, case.notnull.get(table.name, []), fk_ids
        )
        case.rows[table.name] = rows
        if not fk_ids:
            fk_ids = [row["id"] for row in rows]


def build_database(case: GeneratedCase) -> Database:
    """A fresh :class:`Database` holding the case's instance.

    Built from scratch on every call so the two interpreter runs (original
    vs. rewritten program) cannot observe each other's side effects (e.g.
    shipped temporary tables).

    Uses ``engine="both"``: every query the fuzzer executes runs on the
    planned engine *and* the reference oracle, so a planner/physical-
    operator bug surfaces as an :class:`~repro.db.EngineDivergenceError`
    on the very iteration that triggers it.
    """
    db = Database(case.catalog(), default_engine="both")
    for table in case.tables:
        db.insert_many(table.name, case.rows.get(table.name, []))
    return db
