"""The fuzzing loop: generate → oracle → (on failure) shrink → corpus.

Determinism: case ``i`` of seed ``s`` is a pure function of ``(s, i)``;
``--budget-s`` only decides how many cases a run gets through, never what
any individual case contains.  Two runs with the same ``--seed --iters``
therefore produce identical program streams and identical verdicts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from .generator import GeneratedCase, generate_case
from .oracle import KIND_OK, Verdict, run_case
from .shrinker import shrink


@dataclass
class Finding:
    """One failing case, possibly minimized, possibly persisted."""

    case: GeneratedCase
    verdict: Verdict
    minimized: GeneratedCase | None = None
    corpus_path: Path | None = None


@dataclass
class DiffTestStats:
    seed: int
    iterations: int = 0
    verdicts: dict[str, int] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)
    elapsed_s: float = 0.0
    total_round_trips_saved: int = 0

    @property
    def failures(self) -> int:
        return len(self.findings)

    def summary(self) -> str:
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.verdicts.items()))
        return (
            f"difftest seed={self.seed}: {self.iterations} cases in "
            f"{self.elapsed_s:.1f}s [{counts}] "
            f"round-trips saved by rewrites: {self.total_round_trips_saved}; "
            f"{self.failures} failure(s)"
        )


def run_difftest(
    seed: int,
    iters: int = 200,
    budget_s: float | None = None,
    corpus_dir: Path | str | None = None,
    do_shrink: bool = True,
    shrink_budget: int = 500,
    log=None,
) -> DiffTestStats:
    """Run the differential fuzzer; returns aggregate statistics.

    ``budget_s`` bounds wall-clock time (whichever of iters/budget is hit
    first stops the run).  When ``corpus_dir`` is given, every finding is
    shrunk (unless ``do_shrink`` is off) and written there as a JSON repro.
    """
    stats = DiffTestStats(seed=seed)
    start = time.perf_counter()
    for index in range(iters):
        if budget_s is not None and time.perf_counter() - start > budget_s:
            break
        case = generate_case(seed, index)
        verdict = run_case(case)
        stats.iterations += 1
        stats.verdicts[verdict.kind] = stats.verdicts.get(verdict.kind, 0) + 1
        if verdict.kind == KIND_OK and verdict.rewritten_round_trips is not None:
            stats.total_round_trips_saved += (
                verdict.original_round_trips - verdict.rewritten_round_trips
            )
        if verdict.failing:
            finding = Finding(case=case, verdict=verdict)
            if log:
                log(
                    f"[difftest] case {seed}:{index} -> {verdict.kind}: "
                    f"{verdict.detail.splitlines()[-1] if verdict.detail else ''}"
                )
            if do_shrink:
                result = shrink(case, verdict, max_runs=shrink_budget)
                finding.minimized = result.case
                if log:
                    log(
                        f"[difftest]   shrunk: -{result.removed_statements} stmts, "
                        f"-{result.removed_rows} rows in {result.runs} runs"
                    )
            if corpus_dir is not None:
                from .corpus import save_entry

                to_save = finding.minimized or case
                finding.corpus_path = save_entry(
                    corpus_dir,
                    f"case-{seed}-{index}-{verdict.kind}",
                    to_save,
                    verdict,
                    expect=verdict.kind,
                    comment="auto-filed by difftest; root cause pending triage",
                )
                if log:
                    log(f"[difftest]   corpus: {finding.corpus_path}")
            stats.findings.append(finding)
    stats.elapsed_s = time.perf_counter() - start
    return stats
