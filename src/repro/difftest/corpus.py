"""Corpus persistence: minimized failing cases as JSON regression files.

Every fuzzer find is shrunk and written here; ``tests/difftest/corpus/``
replays the checked-in ones on every test run, so past finds become
permanent regression tests.  Files are plain JSON so a human can read the
repro at a glance::

    {
      "name": "case-0-17-divergence",
      "comment": "root cause: ...",
      "expect": "ok",                 # verdict kind required at replay time
      "function": "f",
      "source": "f() { ... }",
      "tables": [{"name": "orders", "columns": [...], "key": ["id"]}],
      "rows": {"orders": [{"id": 1, "amount": 3}]}
    }

``expect`` records the verdict the *fixed* system must produce (usually
``ok`` or ``no-rewrite``); a corpus replay fails if the verdict regresses
to a failing kind or drifts from the recorded one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .generator import GeneratedCase, TableSpec
from .oracle import Verdict, run_case


@dataclass
class CorpusEntry:
    name: str
    comment: str
    expect: str
    case: GeneratedCase


def case_to_dict(case: GeneratedCase) -> dict:
    return {
        "function": case.function,
        "source": case.source,
        "tables": [
            {
                "name": t.name,
                "columns": list(t.columns),
                "key": list(t.key),
                "str_columns": list(t.str_columns),
            }
            for t in case.tables
        ],
        "notnull": {k: list(v) for k, v in case.notnull.items()},
        "rows": case.rows,
    }


def case_from_dict(data: dict, case_id: int = -1) -> GeneratedCase:
    tables = [
        TableSpec(
            name=t["name"],
            columns=list(t["columns"]),
            key=tuple(t.get("key", ())),
            str_columns=list(t.get("str_columns", ())),
        )
        for t in data["tables"]
    ]
    return GeneratedCase(
        case_id=case_id,
        tables=tables,
        source=data["source"],
        function=data.get("function", "f"),
        notnull={k: list(v) for k, v in data.get("notnull", {}).items()},
        rows={k: list(v) for k, v in data.get("rows", {}).items()},
    )


def save_entry(
    directory: Path | str,
    name: str,
    case: GeneratedCase,
    found_verdict: Verdict,
    expect: str,
    comment: str = "",
) -> Path:
    """Write one corpus file; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "name": name,
        "comment": comment,
        "found_kind": found_verdict.kind,
        "found_detail": found_verdict.detail,
        "expect": expect,
        **case_to_dict(case),
    }
    path = directory / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def load_entry(path: Path | str) -> CorpusEntry:
    path = Path(path)
    data = json.loads(path.read_text())
    return CorpusEntry(
        name=data.get("name", path.stem),
        comment=data.get("comment", ""),
        expect=data.get("expect", "ok"),
        case=case_from_dict(data),
    )


def corpus_files(directory: Path | str) -> list[Path]:
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


def replay_entry(entry: CorpusEntry) -> Verdict:
    """Re-run a corpus case through the oracle."""
    return run_case(entry.case)


def replay_file(path: Path | str) -> tuple[CorpusEntry, Verdict]:
    entry = load_entry(path)
    return entry, replay_entry(entry)
