"""The differential oracle: original vs. rewritten program on one instance.

Contract (paper Theorem 1, specialised to this reproduction):

* ``optimize_program`` must never raise on a parseable program — extraction
  failures are *classifications* (``STATUS_FAILED``), not crashes;
* every ``success`` variable must carry SQL and an F-IR node; every
  ``failed`` variable must carry a reason;
* when a rewritten program exists, running it against an identical database
  instance must produce the same return value, the same printed output, and
  the same observable ``__out__`` stream as the original;
* round-trip counts of both runs are recorded (a rewrite may legitimately
  issue more queries than the original — Figure 7(a) — so they are reported,
  not asserted).
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any

from ..core import optimize_program
from ..db import Connection, EngineDivergenceError
from ..interp import Interpreter
from ..interp.values import Entity, ResultCursor, StringBuilder, to_display
from ..lang import parse_program
from .dbgen import build_database
from .generator import GeneratedCase

KIND_OK = "ok"
KIND_NO_REWRITE = "no-rewrite"
KIND_DIVERGENCE = "divergence"
KIND_CRASH = "crash"
KIND_ORIGINAL_ERROR = "original-error"
KIND_REWRITTEN_ERROR = "rewritten-error"
KIND_CONTRACT = "contract"
KIND_ENGINE_DIVERGENCE = "engine-divergence"
KIND_LINT_UNSOUND = "lint-unsound"
KIND_ALTERNATIVE_DIVERGED = "alternative-diverged"
KIND_PREPROCESS_DIVERGED = "preprocess-diverged"

#: Verdicts that fail a fuzzing run.
FAILING_KINDS = frozenset(
    {
        KIND_DIVERGENCE,
        KIND_CRASH,
        KIND_ORIGINAL_ERROR,
        KIND_REWRITTEN_ERROR,
        KIND_CONTRACT,
        KIND_ENGINE_DIVERGENCE,
        KIND_LINT_UNSOUND,
        KIND_ALTERNATIVE_DIVERGED,
        KIND_PREPROCESS_DIVERGED,
    }
)


@dataclass
class Verdict:
    """Outcome of one differential run."""

    kind: str
    detail: str = ""
    statuses: dict[str, str] = field(default_factory=dict)
    original_round_trips: int = 0
    rewritten_round_trips: int | None = None
    rewritten_loops: int = 0
    consolidations: int = 0
    #: Non-identity rewrite-space alternatives executed and compared
    #: against the as-written program (0 when the main verdict failed
    #: before the alternative sweep ran).
    alternatives_checked: int = 0

    @property
    def failing(self) -> bool:
        return self.kind in FAILING_KINDS


def normalize(value: Any) -> Any:
    """Canonicalise interpreter values for structural comparison.

    Entities compare by their plain (unqualified) columns; containers are
    normalised recursively.  Sets become sorted tuples so two runs compare
    independently of iteration order.
    """
    if isinstance(value, Entity):
        return (
            "entity",
            tuple(sorted((k, v) for k, v in value.row.items() if "." not in k)),
        )
    if isinstance(value, ResultCursor):
        return tuple(normalize(Entity(row)) for row in value._rows)
    if isinstance(value, StringBuilder):
        return value.to_string()
    if isinstance(value, tuple):
        return tuple(normalize(v) for v in value)
    if isinstance(value, list):
        return [normalize(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((repr(normalize(v)) for v in value)))
    if isinstance(value, dict):
        return tuple(
            sorted((repr(normalize(k)), repr(normalize(v))) for k, v in value.items())
        )
    return value


def _check_report_contract(report) -> str | None:
    """Classification invariants: statuses must be self-consistent."""
    from ..core import STATUS_FAILED, STATUS_SUCCESS

    for name, extraction in report.variables.items():
        if extraction.status == STATUS_SUCCESS:
            if extraction.sql is None or extraction.node is None:
                return f"success variable {name!r} has no SQL/node"
        if extraction.status == STATUS_FAILED and not extraction.reason:
            return f"failed variable {name!r} has no reason"
    if report.extraction_time_ms < 0:
        return "negative extraction_time_ms"
    return None


def _check_lint_soundness(report) -> str | None:
    """Lint/extractor cross-check: success must imply no EQ1xx blocker.

    The extractor gates on the lint layer's blockers, so a successfully
    extracted variable whose loop still carries one means one of the two
    layers regressed — a program the checker calls unsound was silently
    extracted anyway.
    """
    from ..core import STATUS_SUCCESS
    from ..lint.engine import blockers_for, loop_nesting

    nesting = loop_nesting(report.original.function(report.function))
    for name, extraction in report.variables.items():
        if extraction.status != STATUS_SUCCESS:
            continue
        blockers = blockers_for(
            list(report.diagnostics), nesting, extraction.loop_sid, name
        )
        if blockers:
            codes = ", ".join(sorted({d.code for d in blockers}))
            return (
                f"variable {name!r} extracted successfully despite "
                f"soundness blocker(s) {codes}"
            )
    return None


def _check_preprocess_fidelity(
    case: GeneratedCase, original_result, original_interp
) -> tuple[str, str] | None:
    """Raw-vs-preprocessed cross-check.

    ``report.original`` is the *preprocessed* program, so the main
    divergence check never exercises preprocessing itself.  This check
    closes that gap: the program exactly as parsed must behave like the
    preprocessed one the rest of the oracle uses — same return value and
    the same observable stream.  The precision layer's enabling transforms
    (constant folding, dead-branch pruning, copy propagation, cursor-chain
    normalisation) are all on this path, so an unsound rewrite shows up as
    a ``preprocess-diverged`` verdict.

    Prints are rewritten into ``__out__`` appends by preprocessing, so the
    raw run's printed lines are compared against the preprocessed run's
    rendered ``__out__`` values.
    """
    raw_program = parse_program(case.source)
    raw_interp = Interpreter(raw_program, Connection(build_database(case)))
    try:
        raw_result = raw_interp.run(case.function)
    except EngineDivergenceError:
        return (
            KIND_ENGINE_DIVERGENCE,
            f"planned vs reference engines disagree (raw run):\n"
            f"{traceback.format_exc()}",
        )
    except Exception:
        return (
            KIND_PREPROCESS_DIVERGED,
            f"raw program raised where the preprocessed one succeeded:\n"
            f"{traceback.format_exc()}",
        )
    if normalize(raw_result) != normalize(original_result):
        return (
            KIND_PREPROCESS_DIVERGED,
            f"return value: raw={normalize(raw_result)!r} "
            f"preprocessed={normalize(original_result)!r}",
        )
    raw_stream = list(raw_interp.output) + [
        to_display(v) for v in list(raw_interp.last_out or [])
    ]
    pre_stream = list(original_interp.output) + [
        to_display(v) for v in list(original_interp.last_out or [])
    ]
    if raw_stream != pre_stream:
        return (
            KIND_PREPROCESS_DIVERGED,
            f"observable stream: raw={raw_stream!r} preprocessed={pre_stream!r}",
        )
    return None


def run_case(case: GeneratedCase) -> Verdict:
    """Run the full differential check for one case."""
    catalog = case.catalog()
    try:
        report = optimize_program(case.source, case.function, catalog)
    except Exception:
        return Verdict(
            kind=KIND_CRASH,
            detail=f"optimize_program raised:\n{traceback.format_exc()}",
        )

    statuses = {n: v.status for n, v in report.variables.items()}
    contract_error = _check_report_contract(report)
    if contract_error is not None:
        return Verdict(kind=KIND_CONTRACT, detail=contract_error, statuses=statuses)

    lint_error = _check_lint_soundness(report)
    if lint_error is not None:
        return Verdict(kind=KIND_LINT_UNSOUND, detail=lint_error, statuses=statuses)

    original_conn = Connection(build_database(case))
    original_interp = Interpreter(report.original, original_conn)
    try:
        original_result = original_interp.run(case.function)
    except EngineDivergenceError:
        return Verdict(
            kind=KIND_ENGINE_DIVERGENCE,
            detail=f"planned vs reference engines disagree (original run):\n"
            f"{traceback.format_exc()}",
            statuses=statuses,
        )
    except Exception:
        return Verdict(
            kind=KIND_ORIGINAL_ERROR,
            detail=f"original program raised:\n{traceback.format_exc()}",
            statuses=statuses,
        )

    verdict = Verdict(
        kind=KIND_NO_REWRITE,
        statuses=statuses,
        original_round_trips=original_conn.stats.round_trips,
        rewritten_loops=len(report.rewritten_loops),
        consolidations=len(report.consolidations),
    )

    fidelity = _check_preprocess_fidelity(case, original_result, original_interp)
    if fidelity is not None:
        verdict.kind, verdict.detail = fidelity
        return verdict
    if report.rewritten is None:
        _check_alternatives(case, report, catalog, verdict)
        return verdict

    rewritten_conn = Connection(build_database(case))
    rewritten_interp = Interpreter(report.rewritten, rewritten_conn)
    try:
        rewritten_result = rewritten_interp.run(case.function)
    except EngineDivergenceError:
        verdict.kind = KIND_ENGINE_DIVERGENCE
        verdict.detail = (
            f"planned vs reference engines disagree (rewritten run):\n"
            f"{traceback.format_exc()}"
        )
        return verdict
    except Exception:
        verdict.kind = KIND_REWRITTEN_ERROR
        verdict.detail = (
            f"rewritten program raised (original succeeded):\n"
            f"{traceback.format_exc()}"
        )
        return verdict

    verdict.rewritten_round_trips = rewritten_conn.stats.round_trips
    mismatches = []
    if normalize(original_result) != normalize(rewritten_result):
        mismatches.append(
            "return value: original="
            f"{normalize(original_result)!r} rewritten={normalize(rewritten_result)!r}"
        )
    if original_interp.output != rewritten_interp.output:
        mismatches.append(
            f"printed output: original={original_interp.output!r} "
            f"rewritten={rewritten_interp.output!r}"
        )
    if normalize(original_interp.last_out) != normalize(rewritten_interp.last_out):
        mismatches.append(
            "__out__ stream: original="
            f"{normalize(original_interp.last_out)!r} "
            f"rewritten={normalize(rewritten_interp.last_out)!r}"
        )
    if mismatches:
        verdict.kind = KIND_DIVERGENCE
        verdict.detail = "; ".join(mismatches)
    else:
        verdict.kind = KIND_OK
        _check_alternatives(case, report, catalog, verdict)
    return verdict


def _check_alternatives(case: GeneratedCase, report, catalog, verdict: Verdict) -> None:
    """Execute every member of the rewrite space against the as-written run.

    The contract extends Theorem 1 to the whole space: the chosen rewrite
    being equivalent is not enough — every alternative the generator emits
    must be, because a different deployment profile may select it.  Runs
    only when the primary verdict is passing, so failing verdicts keep
    their original kinds (corpus replays depend on them).
    """
    # Function-level import: repro.rewrites.verify imports this module for
    # ``normalize``, so a top-level import would be circular.
    from ..rewrites import generate_alternatives
    from ..rewrites.verify import verify_alternatives

    try:
        sites = generate_alternatives(report, catalog)
    except Exception:
        verdict.kind = KIND_CRASH
        verdict.detail = (
            f"alternative generation raised:\n{traceback.format_exc()}"
        )
        return
    checks = verify_alternatives(
        sites, case.function, lambda: build_database(case)
    )
    for check in checks:
        verdict.alternatives_checked += 1
        if check.equivalent:
            continue
        if check.engine_divergence:
            verdict.kind = KIND_ENGINE_DIVERGENCE
        else:
            verdict.kind = KIND_ALTERNATIVE_DIVERGED
        verdict.detail = (
            f"{check.kind} alternative for loop@{check.loop_sid}: "
            f"{check.detail}"
        )
        return
