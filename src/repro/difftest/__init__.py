"""Differential equivalence fuzzer (randomized Theorem 1 checking).

The paper's central claim is that loop-to-fold conversion plus rules T1–T7
preserve program semantics.  This package checks the claim mechanically:
randomized MiniJava programs over randomized schemas and database instances
are run twice — as written, and as rewritten by ``optimize_program`` — and
any observable difference is shrunk to a minimal repro and filed in a
corpus for permanent regression replay.

Entry points:

* ``python -m repro difftest --seed N --iters K [--budget-s S]`` — CLI;
* :func:`run_difftest` — the same loop, programmatic;
* :func:`run_case` / :func:`generate_case` — one-case building blocks;
* :mod:`repro.difftest.corpus` — repro file persistence and replay.
"""

from .corpus import (
    CorpusEntry,
    case_from_dict,
    case_to_dict,
    corpus_files,
    load_entry,
    replay_entry,
    replay_file,
    save_entry,
)
from .dbgen import build_database, populate_case
from .generator import CaseGenerator, GeneratedCase, TableSpec, generate_case
from .oracle import (
    FAILING_KINDS,
    KIND_CONTRACT,
    KIND_CRASH,
    KIND_DIVERGENCE,
    KIND_LINT_UNSOUND,
    KIND_NO_REWRITE,
    KIND_OK,
    KIND_PREPROCESS_DIVERGED,
    KIND_ORIGINAL_ERROR,
    KIND_REWRITTEN_ERROR,
    Verdict,
    normalize,
    run_case,
)
from .runner import DiffTestStats, Finding, run_difftest
from .shrinker import ShrinkResult, shrink

__all__ = [
    "CaseGenerator",
    "CorpusEntry",
    "DiffTestStats",
    "FAILING_KINDS",
    "Finding",
    "GeneratedCase",
    "KIND_CONTRACT",
    "KIND_CRASH",
    "KIND_DIVERGENCE",
    "KIND_LINT_UNSOUND",
    "KIND_NO_REWRITE",
    "KIND_OK",
    "KIND_PREPROCESS_DIVERGED",
    "KIND_ORIGINAL_ERROR",
    "KIND_REWRITTEN_ERROR",
    "ShrinkResult",
    "TableSpec",
    "Verdict",
    "build_database",
    "case_from_dict",
    "case_to_dict",
    "corpus_files",
    "generate_case",
    "load_entry",
    "normalize",
    "populate_case",
    "replay_entry",
    "replay_file",
    "run_case",
    "run_difftest",
    "save_entry",
    "shrink",
]
