"""Delta-debugging shrinker for failing differential cases.

Given a case whose verdict is failing, the shrinker greedily minimises
(1) the database instance — ddmin over each table's rows — and (2) the
program — statement deletion and ``if``/``else`` flattening on the parsed
AST, re-unparsed after every accepted edit — while preserving the verdict
*kind* (e.g. a ``divergence`` must stay a divergence).

The result is a small, self-contained repro suitable for checking into
``tests/difftest/corpus/`` and replaying forever.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Callable

from ..lang import Block, FunctionDef, If, parse_program, unparse_program, walk_statements
from .generator import GeneratedCase
from .oracle import Verdict, run_case


@dataclass
class ShrinkResult:
    case: GeneratedCase
    verdict: Verdict
    runs: int
    removed_rows: int
    removed_statements: int


def _clone_case(case: GeneratedCase) -> GeneratedCase:
    return replace(
        case,
        tables=list(case.tables),
        notnull={k: list(v) for k, v in case.notnull.items()},
        rows={k: [dict(r) for r in rows] for k, rows in case.rows.items()},
    )


class _Shrinker:
    def __init__(
        self,
        target_kind: str,
        oracle: Callable[[GeneratedCase], Verdict],
        max_runs: int,
    ):
        self._target = target_kind
        self._oracle = oracle
        self._budget = max_runs
        self.runs = 0
        self.last_verdict: Verdict | None = None

    def interesting(self, case: GeneratedCase) -> bool:
        if self.runs >= self._budget:
            return False
        self.runs += 1
        try:
            verdict = self._oracle(case)
        except Exception:
            # A candidate that breaks the harness itself is not a smaller
            # instance of the original failure.
            return False
        if verdict.kind == self._target:
            self.last_verdict = verdict
            return True
        return False

    # ------------------------------------------------------------------
    # Rows: ddmin per table

    def shrink_rows(self, case: GeneratedCase) -> GeneratedCase:
        for table in list(case.rows):
            rows = case.rows[table]
            if not rows:
                continue
            case.rows[table] = self._ddmin(case, table, rows)
        return case

    def _ddmin(self, case: GeneratedCase, table: str, rows: list[dict]) -> list[dict]:
        granularity = 2
        while len(rows) >= 2:
            chunk = max(1, len(rows) // granularity)
            reduced = False
            start = 0
            while start < len(rows):
                candidate_rows = rows[:start] + rows[start + chunk :]
                candidate = _clone_case(case)
                candidate.rows[table] = candidate_rows
                if self.interesting(candidate):
                    rows = candidate_rows
                    case.rows[table] = rows
                    reduced = True
                else:
                    start += chunk
            if not reduced:
                if chunk <= 1:
                    break
                granularity *= 2
        # Try the empty instance last (many failures need no rows at all).
        if rows:
            candidate = _clone_case(case)
            candidate.rows[table] = []
            if self.interesting(candidate):
                rows = []
                case.rows[table] = rows
        return rows

    # ------------------------------------------------------------------
    # Program: statement-level edits

    def shrink_program(self, case: GeneratedCase) -> tuple[GeneratedCase, int]:
        removed = 0
        progress = True
        while progress and self.runs < self._budget:
            progress = False
            program = parse_program(case.source)
            func = program.function(case.function)
            for edit in self._edits(func):
                candidate_program = copy.deepcopy(program)
                candidate_func = candidate_program.function(case.function)
                if not edit(candidate_func):
                    continue
                candidate = _clone_case(case)
                candidate.source = unparse_program(candidate_program)
                if self.interesting(candidate):
                    case = candidate
                    removed += 1
                    progress = True
                    break
        return case, removed

    @staticmethod
    def _edits(func: FunctionDef):
        """Yield edit closures, addressed structurally so they can be
        re-applied to a deep copy of the program."""
        blocks = [
            (block_index, stmt_index)
            for block_index, block in enumerate(_blocks(func))
            for stmt_index in range(len(block.statements))
        ]
        for block_index, stmt_index in blocks:
            yield _DeleteStatement(block_index, stmt_index)
        for block_index, stmt_index in blocks:
            yield _FlattenIf(block_index, stmt_index, "then")
            yield _FlattenIf(block_index, stmt_index, "else")
            yield _FlattenIf(block_index, stmt_index, "drop-else")


def _blocks(func: FunctionDef) -> list[Block]:
    return [s for s in walk_statements(func.body) if isinstance(s, Block)]


@dataclass
class _DeleteStatement:
    block_index: int
    stmt_index: int

    def __call__(self, func: FunctionDef) -> bool:
        blocks = _blocks(func)
        if self.block_index >= len(blocks):
            return False
        block = blocks[self.block_index]
        if self.stmt_index >= len(block.statements):
            return False
        del block.statements[self.stmt_index]
        return True


@dataclass
class _FlattenIf:
    block_index: int
    stmt_index: int
    mode: str  # "then" | "else" | "drop-else"

    def __call__(self, func: FunctionDef) -> bool:
        blocks = _blocks(func)
        if self.block_index >= len(blocks):
            return False
        block = blocks[self.block_index]
        if self.stmt_index >= len(block.statements):
            return False
        stmt = block.statements[self.stmt_index]
        if not isinstance(stmt, If):
            return False
        if self.mode == "then":
            replacement = stmt.then_body.statements
        elif self.mode == "else":
            if stmt.else_body is None:
                return False
            replacement = stmt.else_body.statements
        else:
            if stmt.else_body is None:
                return False
            stmt.else_body = None
            return True
        block.statements[self.stmt_index : self.stmt_index + 1] = replacement
        return True


def shrink(
    case: GeneratedCase,
    verdict: Verdict,
    oracle: Callable[[GeneratedCase], Verdict] = run_case,
    max_runs: int = 500,
) -> ShrinkResult:
    """Minimise a failing case while preserving its verdict kind."""
    shrinker = _Shrinker(verdict.kind, oracle, max_runs)
    original_rows = sum(len(r) for r in case.rows.values())
    case = _clone_case(case)
    case = shrinker.shrink_rows(case)
    case, removed_statements = shrinker.shrink_program(case)
    # One more row pass: statement removal often frees up more rows.
    case = shrinker.shrink_rows(case)
    final_rows = sum(len(r) for r in case.rows.values())
    final_verdict = shrinker.last_verdict or verdict
    return ShrinkResult(
        case=case,
        verdict=final_verdict,
        runs=shrinker.runs,
        removed_rows=original_rows - final_rows,
        removed_statements=removed_statements,
    )
