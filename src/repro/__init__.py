"""repro — reproduction of *Extracting Equivalent SQL from Imperative Code
in Database Applications* (Emani, Ramachandra, Bhattacharya, Sudarshan;
SIGMOD 2016).

Public API
----------

The stable facade is ``extract_sql``, ``optimize_program``,
``ExtractOptions``, ``Catalog``, ``ScanReport`` (plus the report types
they return); everything else is internal and may move between releases.

>>> from repro import Catalog, ExtractOptions, extract_sql
>>> catalog = Catalog.from_dict(
...     {"board": {"columns": ["id", "rnd_id", "p1", "p2"], "key": ["id"]}}
... )
>>> options = ExtractOptions(dialect="postgres")
>>> report = extract_sql(SOURCE, "findMaxScore", catalog, options=options)  # doctest: +SKIP

Batch scans (``python -m repro scan DIR``) live in :mod:`repro.batch`:

>>> from repro.batch import scan_directory
>>> report = scan_directory("src/", catalog, jobs=4)  # doctest: +SKIP

Language frontends (``repro.frontends``) make the ingestion boundary
pluggable: the same pipeline extracts SQL from MiniJava (``.mj``) and a
Python DB-API subset (``.py``); pick one with
``ExtractOptions(frontend="python")`` or let the batch scanner detect it
from the file suffix:

>>> from repro import available_frontends, get_frontend
>>> available_frontends()
('minijava', 'python')

Sub-packages:

``repro.lang``      MiniJava front end (lexer/parser/AST/unparser)
``repro.frontends`` language-frontend protocol + registry (MiniJava, Python)
``repro.analysis``  CFG, dominators, regions, dataflow
``repro.ir``        D-IR (ee-DAG + ve-Map)
``repro.fir``       F-IR (fold) + preconditions + argmax
``repro.rules``     transformation rules T1–T7 and the rule engine
``repro.sqlgen``    SQL generation (PostgreSQL/MySQL/SQL Server/ANSI)
``repro.rewrite``   program rewriting + dead-code elimination
``repro.db``        in-memory engine + simulated client/server connection
``repro.interp``    MiniJava interpreter (equivalence checks, benchmarks)
``repro.workloads`` the paper's applications (Wilos, Matoso, JobPortal...)
``repro.baselines`` batching / prefetching / QBS reference data
``repro.cost``      Volcano/Cascades-style cost-based rewriting (App. C)
``repro.batch``     directory scans, result cache, worker pool
``repro.lint``      soundness checker + coded diagnostics (EQ1xx/2xx/3xx)
``repro.rewrites``  cost-based selection over the rewrite space (Cobra)

Cost-based rewrite selection (``--profile``/``--explain-rewrites``):

>>> from repro import DeploymentProfile, ExtractOptions, extract_sql
>>> report = extract_sql(SOURCE, "orderStats", catalog,
...                      options=ExtractOptions(profile="wan"))  # doctest: +SKIP
>>> report.rewrite_plan.choices[0].chosen.kind  # doctest: +SKIP

Linting (``python -m repro lint DIR``) lives in :mod:`repro.lint`:

>>> from repro import lint_program
>>> report = lint_program(SOURCE)  # doctest: +SKIP
>>> [d.code for d in report.diagnostics]  # doctest: +SKIP
"""

from .algebra import Catalog
from .batch import ScanReport, scan_directory
from .core import (
    ExtractionReport,
    ExtractOptions,
    STATUS_CAPABLE,
    STATUS_FAILED,
    STATUS_SUCCESS,
    VariableExtraction,
    extract_sql,
    optimize_program,
)
from .db import Connection, CostParameters, Database
from .frontends import (
    Frontend,
    FrontendError,
    available_frontends,
    detect_frontend,
    frontend_for_path,
    get_frontend,
    register_frontend,
)
from .interp import Interpreter, run_program
from .lint import (
    Diagnostic,
    LintReport,
    Severity,
    SourceSpan,
    lint_function,
    lint_program,
)
from .lint.service import LintScanReport, lint_directory
from .rewrites import (
    DeploymentProfile,
    RewritePlan,
    generate_alternatives,
    get_profile,
    plan_rewrites,
    register_profile,
    verify_alternatives,
)

__version__ = "1.5.0"

__all__ = [
    "Catalog",
    "Connection",
    "CostParameters",
    "Database",
    "DeploymentProfile",
    "Diagnostic",
    "ExtractOptions",
    "ExtractionReport",
    "Frontend",
    "FrontendError",
    "Interpreter",
    "LintReport",
    "LintScanReport",
    "RewritePlan",
    "STATUS_CAPABLE",
    "STATUS_FAILED",
    "STATUS_SUCCESS",
    "ScanReport",
    "Severity",
    "SourceSpan",
    "VariableExtraction",
    "available_frontends",
    "detect_frontend",
    "extract_sql",
    "frontend_for_path",
    "generate_alternatives",
    "get_frontend",
    "get_profile",
    "lint_directory",
    "lint_function",
    "lint_program",
    "optimize_program",
    "plan_rewrites",
    "register_frontend",
    "register_profile",
    "run_program",
    "scan_directory",
    "verify_alternatives",
    "__version__",
]
