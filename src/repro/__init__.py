"""repro — reproduction of *Extracting Equivalent SQL from Imperative Code
in Database Applications* (Emani, Ramachandra, Bhattacharya, Sudarshan;
SIGMOD 2016).

Public API
----------

The headline entry points:

>>> from repro import extract_sql, optimize_program, Catalog
>>> catalog = Catalog()
>>> _ = catalog.define("board", ["id", "rnd_id", "p1", "p2"], key=("id",))
>>> report = extract_sql(SOURCE, "findMaxScore", catalog)  # doctest: +SKIP

Sub-packages:

``repro.lang``      MiniJava front end (lexer/parser/AST/unparser)
``repro.analysis``  CFG, dominators, regions, dataflow
``repro.ir``        D-IR (ee-DAG + ve-Map)
``repro.fir``       F-IR (fold) + preconditions + argmax
``repro.rules``     transformation rules T1–T7 and the rule engine
``repro.sqlgen``    SQL generation (PostgreSQL/MySQL/SQL Server/ANSI)
``repro.rewrite``   program rewriting + dead-code elimination
``repro.db``        in-memory engine + simulated client/server connection
``repro.interp``    MiniJava interpreter (equivalence checks, benchmarks)
``repro.workloads`` the paper's applications (Wilos, Matoso, JobPortal...)
``repro.baselines`` batching / prefetching / QBS reference data
``repro.cost``      Volcano/Cascades-style cost-based rewriting (App. C)
"""

from .algebra import Catalog
from .core import (
    ExtractionReport,
    STATUS_CAPABLE,
    STATUS_FAILED,
    STATUS_SUCCESS,
    VariableExtraction,
    extract_sql,
    optimize_program,
)
from .db import Connection, CostParameters, Database
from .interp import Interpreter, run_program

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "Connection",
    "CostParameters",
    "Database",
    "ExtractionReport",
    "Interpreter",
    "STATUS_CAPABLE",
    "STATUS_FAILED",
    "STATUS_SUCCESS",
    "VariableExtraction",
    "extract_sql",
    "optimize_program",
    "run_program",
    "__version__",
]
