"""F-IR: fold intermediate representation (loop → fold + preconditions)."""

from .argmax import ArgmaxMatch, detect_argmax, try_dependent_aggregation
from .loop_to_fold import (
    FoldOutcome,
    PreconditionReport,
    check_preconditions_ddg,
    count_folds,
    fold_identity,
    loop_to_fold,
)
from .scalarize import (
    CAPABLE_UNIMPLEMENTED_OPS,
    CapableButUnimplemented,
    NotScalarizable,
    references_bound,
    references_cursor,
    scalarize,
)

__all__ = [
    "ArgmaxMatch",
    "CAPABLE_UNIMPLEMENTED_OPS",
    "CapableButUnimplemented",
    "FoldOutcome",
    "NotScalarizable",
    "PreconditionReport",
    "check_preconditions_ddg",
    "count_folds",
    "detect_argmax",
    "fold_identity",
    "loop_to_fold",
    "references_bound",
    "references_cursor",
    "scalarize",
    "try_dependent_aggregation",
]
