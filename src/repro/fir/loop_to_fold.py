"""Loop-to-fold translation (paper Section 4.2, Figure 6, Theorem 1).

Converts ``ELoop`` nodes into ``EFold`` nodes when the preconditions hold:

P1  there is a cycle of dependences containing the accumulating statements
    and a loop-carried flow dependence — operationally, the loop body's
    expression for ``v`` references ``⟨v⟩`` (the value at iteration start);
P2  no other loop-carried flow dependence exists apart from that cycle and
    the cursor advance — operationally, the body expression must not
    reference any *other* loop-updated variable;
P3  no external dependences — no database/output writes in the loop body.

Both the ee-DAG check and the paper's DDG-based formulation (over slices of
the loop body, Section 4.2) are implemented; the extractor runs the DDG
check as a cross-validation of the ee-DAG one.

The dependent-aggregation relaxation of Appendix B (argmax/argmin) is in
:mod:`repro.fir.argmax`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import (
    DB_LOCATION,
    build_loop_ddg,
    slice_statements,
    stmt_def_use,
)
from ..ir import (
    DagBuilder,
    EAttr,
    EBoundVar,
    EConst,
    EExists,
    EFold,
    ELoop,
    ENode,
    EOp,
    EQuery,
    EScalarQuery,
    EVar,
    contains_opaque,
    walk_enodes,
)
from ..ir.nodes import free_bound_vars
from ..lang import ForEach


@dataclass
class FoldOutcome:
    """Result of attempting to translate one variable's Loop into fold.

    ``code`` is the stable diagnostic code (see :mod:`repro.lint.codes`)
    classifying the failure; empty on success.
    """

    node: ENode | None
    ok: bool
    reason: str = ""
    code: str = ""

    @staticmethod
    def success(node: ENode) -> "FoldOutcome":
        return FoldOutcome(node=node, ok=True)

    @staticmethod
    def failure(reason: str, code: str = "EQ201") -> "FoldOutcome":
        return FoldOutcome(node=None, ok=False, reason=reason, code=code)


def loop_to_fold(node: ENode, dag: DagBuilder) -> FoldOutcome:
    """Translate every ``ELoop`` under ``node`` into ``EFold`` (bottom-up).

    Mirrors procedure ``toFIR`` of Figure 6: sub-regions (inner loops) are
    translated first; failure of any inner loop fails the enclosing
    expression (the inner Loop stays non-algebraic).
    """
    try:
        converted = _convert(node, dag)
    except _FoldFailure as failure:
        return FoldOutcome.failure(failure.reason, failure.code)
    return FoldOutcome.success(converted)


class _FoldFailure(Exception):
    def __init__(self, reason: str, code: str = "EQ201"):
        self.reason = reason
        self.code = code
        super().__init__(reason)


def _convert(node: ENode, dag: DagBuilder) -> ENode:
    if isinstance(node, (EConst, EVar, EBoundVar)):
        return node
    if isinstance(node, EAttr):
        return dag.attr(_convert(node.base, dag), node.attr)
    if isinstance(node, EOp):
        if node.op == "opaque":
            raise _FoldFailure("expression contains an unsupported construct")
        operands = tuple(_convert(c, dag) for c in node.operands)
        return dag.intern(EOp(node.op, operands))
    if isinstance(node, EQuery):
        params = tuple((name, _convert(v, dag)) for name, v in node.params)
        return dag.query(node.rel, params)
    if isinstance(node, EScalarQuery):
        params = tuple((name, _convert(v, dag)) for name, v in node.params)
        return dag.scalar_query(node.rel, params)
    if isinstance(node, EExists):
        params = tuple((name, _convert(v, dag)) for name, v in node.params)
        return dag.exists(node.rel, params, node.negated)
    if isinstance(node, EFold):
        return dag.fold(
            _convert(node.func, dag),
            _convert(node.init, dag),
            _convert(node.source, dag),
            node.var,
            node.cursor,
            node.loop_sid,
            node.span,
        )
    if isinstance(node, ELoop):
        return _convert_loop(node, dag)
    raise _FoldFailure(f"cannot translate {type(node).__name__}")


def _convert_loop(loop: ELoop, dag: DagBuilder) -> ENode:
    # Inner loops first (Figure 6: toFIR recurses into sub-regions).
    body = _convert(loop.body, dag)
    init = _convert(loop.init, dag)
    source = _convert(loop.source, dag)

    check_preconditions_dag(loop, body)
    return dag.fold(
        body, init, source, loop.var, loop.cursor, loop.loop_sid, loop.span
    )


def check_preconditions_dag(loop: ELoop, body: ENode | None = None) -> None:
    """ee-DAG-level preconditions; raises ``_FoldFailure`` on violation."""
    body = body if body is not None else loop.body
    if contains_opaque(body):
        raise _FoldFailure(
            f"loop body for {loop.var!r} contains an unsupported construct"
        )
    if DB_LOCATION in loop.updated:
        raise _FoldFailure(
            "P3: loop body writes the database (external dependence)",
            code="EQ101",
        )
    bound = free_bound_vars(body)
    extra = (bound - {loop.var, loop.cursor}) & set(loop.updated)
    if extra:
        raise _FoldFailure(
            "P2: loop-carried dependence on other updated variable(s): "
            + ", ".join(sorted(extra)),
            code="EQ203",
        )
    if loop.var not in bound:
        raise _FoldFailure(
            f"P1: no dependence cycle — {loop.var!r} is recomputed each "
            "iteration rather than accumulated",
            code="EQ202",
        )
    if not isinstance(loop.source, (EQuery, EFold, ELoop)):
        raise _FoldFailure(
            "iterated collection cannot be expressed as a query result",
            code="EQ207",
        )


# ----------------------------------------------------------------------
# The paper's DDG-based precondition check (Figure 6), used as a
# cross-validation of the ee-DAG check above.


@dataclass
class PreconditionReport:
    """Outcome of the Figure 6 preconditions for one variable."""

    variable: str
    p1_cycle: bool
    p2_no_other_lcfd: bool
    p3_no_external: bool
    slice_sids: frozenset[int]

    @property
    def ok(self) -> bool:
        return self.p1_cycle and self.p2_no_other_lcfd and self.p3_no_external


def check_preconditions_ddg(loop_stmt: ForEach, variable: str) -> PreconditionReport:
    """Run the Figure 6 preconditions over the loop body's DDG and slice."""
    graph = build_loop_ddg(loop_stmt.body, cursor_var=loop_stmt.var)
    slice_sids = slice_statements(graph, variable)

    acc_sids = {
        stmt.sid
        for stmt in graph.statements
        if variable in stmt_def_use(stmt).writes
    }
    lcfd_edges = [e for e in graph.edges_of_kind("lcfd") if e.target in slice_sids]

    # P1: a cycle through the accumulating statements with an lcfd edge —
    # i.e. some lcfd edge on the variable itself touching its writers.
    own_lcfd = [
        e for e in lcfd_edges if e.location == variable and e.source in acc_sids
    ]
    p1 = bool(own_lcfd)

    # P2: no lcfd edges in the slice other than the accumulation's own
    # (cursor-advance lcfd edges were already excluded when building the DDG).
    other_lcfd = [e for e in lcfd_edges if e.location != variable]
    p2 = not other_lcfd

    # P3: no external dependences.  Checked over the whole loop body, not
    # just the slice: the paper conservatively treats the entire database as
    # one location ("writes to a relation may trigger updates on another
    # relation"), so an update anywhere in the body poisons the iterated
    # query and with it every extraction from this loop.
    external = graph.edges_of_kind("external")
    # Read-read pairs were already excluded when building the DDG, so any
    # surviving edge means a write to an external location.
    p3 = not external

    return PreconditionReport(
        variable=variable,
        p1_cycle=p1,
        p2_no_other_lcfd=p2,
        p3_no_external=p3,
        slice_sids=frozenset(slice_sids),
    )


def fold_identity(op: str) -> ENode | None:
    """The identity element of a folding operator (rule T5.1/T6 support)."""
    identities: dict[str, ENode] = {
        "+": EConst(0),
        "*": EConst(1),
        "and": EConst(True),
        "or": EConst(False),
        "append": EOp("empty_list", ()),
        "insert": EOp("empty_set", ()),
    }
    if op in identities:
        return identities[op]
    if op in ("max", "min"):
        # max/min have no finite identity; rule T6 handles non-identity
        # initial values instead.
        return None
    return None


def count_folds(node: ENode) -> int:
    """Number of fold operators remaining in an expression."""
    return sum(1 for n in walk_enodes(node) if isinstance(n, EFold))
