"""Dependent aggregations — argmax/argmin (paper Appendix B).

A loop such as::

    best = null; scoreMax = 0;
    for (t : Q) {
        if (t.score > scoreMax) { scoreMax = t.score; best = t.name; }
    }

fails precondition P2 for ``best`` (it carries a dependence on ``scoreMax``).
Appendix B relaxes this: the pair can be folded jointly, and for the special
case of argmax/argmin an equivalent SQL query exists using ORDER BY + LIMIT.
This module detects the pattern on the Loop nodes and produces the
ORDER BY/LIMIT form directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra import (
    AggCall,
    AggItem,
    Aggregate,
    Limit,
    Lit,
    Project,
    ProjectItem,
    RelExpr,
    Select,
    Sort,
    SortKey,
)
from ..ir import (
    DagBuilder,
    EBoundVar,
    EConst,
    ELoop,
    ENode,
    EOp,
    EQuery,
)
from .scalarize import NotScalarizable, scalarize

_MAX_OPS = {">", ">="}
_MIN_OPS = {"<", "<="}


@dataclass
class ArgmaxMatch:
    """A detected dependent-aggregation pair."""

    agg_var: str  # the max/min accumulator (e.g. scoreMax)
    arg_var: str  # the dependent variable (e.g. best)
    direction: str  # "max" or "min"
    measure: ENode  # e(t): the compared expression
    payload: ENode  # g(t): the value assigned to arg_var


def detect_argmax(loop: ELoop, siblings: dict[str, ELoop]) -> ArgmaxMatch | None:
    """Detect the argmax/argmin pattern for ``loop`` (the dependent var).

    ``siblings`` maps variable → its Loop node for the same source loop.
    The dependent variable's body must be ``?[cmp(e, ⟨u⟩), g, ⟨self⟩]`` with
    a sibling ``u`` whose body is ``max/min(⟨u⟩, e)`` over the same ``e``.
    """
    body = loop.body
    if not (isinstance(body, EOp) and body.op == "?" and len(body.operands) == 3):
        return None
    cond, if_true, if_false = body.operands
    if not (isinstance(if_false, EBoundVar) and if_false.name == loop.var):
        return None
    if not (isinstance(cond, EOp) and len(cond.operands) == 2):
        return None
    if cond.op in _MAX_OPS:
        direction = "max"
    elif cond.op in _MIN_OPS:
        direction = "min"
    else:
        return None
    measure, other = cond.operands
    if not isinstance(other, EBoundVar):
        return None
    agg_var = other.name
    sibling = siblings.get(agg_var)
    if sibling is None or sibling.loop_sid != loop.loop_sid:
        return None
    # The sibling must be the canonicalised max/min accumulation of the same
    # measure expression.
    expected = EOp(direction, (EBoundVar(agg_var), measure))
    if sibling.body != expected:
        return None
    return ArgmaxMatch(
        agg_var=agg_var,
        arg_var=loop.var,
        direction=direction,
        measure=measure,
        payload=if_true,
    )


def _peel_sort(rel: RelExpr) -> tuple[RelExpr, tuple[SortKey, ...]]:
    """Split a source into its unordered form and its τ keys, if any."""
    if isinstance(rel, Sort):
        inner, keys = _peel_sort(rel.child)
        return inner, rel.keys + keys
    if isinstance(rel, Select):
        inner, keys = _peel_sort(rel.child)
        if keys:
            return Select(inner, rel.pred), keys
        return rel, ()
    return rel, ()


def argmax_to_algebra(
    loop: ELoop, match: ArgmaxMatch, sibling_init: ENode, dag: DagBuilder
) -> ENode | None:
    """Build the ORDER BY + LIMIT form for the dependent variable.

    Returns ``?[updated-at-least-once, π_g(limit₁(τ_e(Q))), init]`` where the
    guard compares the aggregate against the accumulator's initial value
    (strict comparison semantics: rows not exceeding the initial value never
    update the pair).
    """
    if not isinstance(loop.source, EQuery):
        return None
    source = loop.source
    try:
        measure_s = scalarize(match.measure, loop.cursor)
        payload_s = scalarize(match.payload, loop.cursor)
    except NotScalarizable:
        return None
    except Exception:
        return None

    ascending = match.direction == "min"
    # The original picks the *first* strict improvement in iteration order,
    # so among measure ties the first row of the source query wins.  An HQL
    # `order by` on the source therefore becomes the tiebreaker keys, and the
    # source itself is used unordered (a τ under γ/LIMIT-1 renders as an
    # ORDER BY the enclosing block cannot resolve).
    unordered, tiebreak = _peel_sort(source.rel)
    pick = Project(
        Limit(Sort(unordered, (SortKey(measure_s, ascending),) + tiebreak), 1),
        (ProjectItem(payload_s, "picked"),),
    )
    picked = dag.scalar_query(pick, source.params)

    agg_query = dag.scalar_query(
        Aggregate(
            unordered,
            (),
            (AggItem(AggCall(match.direction, measure_s), "agg"),),
        ),
        source.params,
    )
    if isinstance(sibling_init, EConst) and sibling_init.value is None:
        # Initial value is null: update happens whenever any row exists —
        # a non-empty aggregate implies an update.
        guard = dag.op("not_null", agg_query)
    else:
        cmp_op = ">" if match.direction == "max" else "<"
        guard = dag.op(cmp_op, agg_query, sibling_init)
    init = loop.init
    return dag.intern(EOp("?", (guard, picked, init)))


def try_dependent_aggregation(
    loop: ELoop, siblings: dict[str, ELoop], dag: DagBuilder
) -> ENode | None:
    """Full argmax pipeline: detect + build; None when inapplicable."""
    match = detect_argmax(loop, siblings)
    if match is None:
        return None
    sibling = siblings[match.agg_var]
    return argmax_to_algebra(loop, match, sibling.init, dag)
