"""Conversion of ee-DAG scalar expressions into relational algebra scalars.

Used when pushing computation from folding functions into queries (rules
T2/T3/T5) and when emitting SQL.  Two failure tiers mirror the paper's
Table 1 taxonomy:

* :class:`CapableButUnimplemented` — the construct is representable in
  F-IR and translatable by the paper's *techniques*, but the reference
  implementation had no SQL emitter for it (the Table 1 "✓" rows).  We
  reproduce the same gaps for fidelity.
* :class:`NotScalarizable` — the construct genuinely has no relational
  counterpart here (tuples, folds, opaque values); the enclosing rule
  simply does not fire.
"""

from __future__ import annotations

from ..algebra import (
    BinOp,
    CaseWhen,
    Col,
    Func,
    Lit,
    Param,
    ScalarExpr,
    UnOp,
)
from ..ir import (
    EAttr,
    EBoundVar,
    EConst,
    EExists,
    ENode,
    EOp,
    EScalarQuery,
    EVar,
)
from ..algebra.expressions import ExistsExpr, ScalarSubquery


class NotScalarizable(Exception):
    """The expression has no scalar relational form."""


class CapableButUnimplemented(Exception):
    """Representable by the paper's techniques; no SQL emitter here.

    Mirrors the "✓" rows of Table 1: the reference implementation declined
    these even though the technique covers them.
    """

    def __init__(self, construct: str):
        self.construct = construct
        super().__init__(f"no SQL emitter for {construct!r} (technique-capable)")


#: ee-DAG operators translatable by the technique but deliberately left
#: without an SQL emitter, reproducing the implementation gaps the paper
#: reports for its Table 1 "✓" entries.
CAPABLE_UNIMPLEMENTED_OPS = {
    "str_contains",
    "starts_with",
    "ends_with",
    "index_of",
    "substring",
    "size",
    "isempty",
    "to_int",
    "to_float",
    "map_put",
    "empty_map",
}

_BINARY_OPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "%",
    "==": "=",
    "!=": "!=",
    "<": "<",
    ">": ">",
    "<=": "<=",
    ">=": ">=",
    "and": "AND",
    "or": "OR",
}

_FUNC_OPS = {
    "max": "GREATEST",
    "min": "LEAST",
    "upper": "UPPER",
    "lower": "LOWER",
    "trim": "TRIM",
    "length": "LENGTH",
    "abs": "ABS",
}


def scalarize(
    node: ENode,
    cursor: str,
    column_of: dict[str, str] | None = None,
) -> ScalarExpr:
    """Convert an ee-DAG expression over the cursor tuple into a scalar.

    ``EAttr(EBoundVar(cursor), a)`` becomes ``Col(a)`` (through
    ``column_of`` if given); free program inputs (``EVar``) become
    parameters; constants become literals.
    """
    if isinstance(node, EConst):
        return Lit(node.value)
    if isinstance(node, EVar):
        return Param(node.name)
    if isinstance(node, EAttr):
        if isinstance(node.base, EBoundVar) and node.base.name == cursor:
            name = node.attr
            if column_of is not None:
                name = column_of.get(name, name)
            return Col(name)
        if isinstance(node.base, (EVar, EBoundVar)):
            # Attribute of a non-cursor tuple value (e.g. a scalar row
            # variable): expose as a parameter so the caller may bind it.
            return Param(f"{_base_name(node.base)}__{node.attr}")
        raise NotScalarizable(f"attribute access on {node.base}")
    if isinstance(node, EBoundVar):
        raise NotScalarizable(f"bare bound variable {node.name}")
    if isinstance(node, EScalarQuery):
        if node.params:
            raise NotScalarizable("correlated scalar subquery inside scalar context")
        return ScalarSubquery(node.rel)
    if isinstance(node, EExists):
        if node.params:
            raise NotScalarizable("correlated EXISTS inside scalar context")
        return ExistsExpr(node.rel, node.negated)
    if isinstance(node, EOp):
        return _scalarize_op(node, cursor, column_of)
    raise NotScalarizable(f"cannot scalarize {type(node).__name__}")


def _base_name(node: ENode) -> str:
    if isinstance(node, EVar):
        return node.name
    if isinstance(node, EBoundVar):
        return node.name
    raise NotScalarizable("complex attribute base")


#: ``combine_<op>(init, aggregate)`` merges a fold's initial value with a
#: scalar aggregate whose value is NULL on empty input — the NULL collapses
#: back to the initial value, matching imperative semantics on empty results.
_COMBINE_OPS = {
    "combine_max": lambda a, b: Func("GREATEST", (a, Func("COALESCE", (b, a)))),
    "combine_min": lambda a, b: Func("LEAST", (a, Func("COALESCE", (b, a)))),
    "combine_sum": lambda a, b: BinOp("+", a, Func("COALESCE", (b, Lit(0)))),
    "combine_count": lambda a, b: BinOp("+", a, Func("COALESCE", (b, Lit(0)))),
    "combine_or": lambda a, b: BinOp("OR", a, Func("COALESCE", (b, Lit(False)))),
    "combine_and": lambda a, b: BinOp("AND", a, Func("COALESCE", (b, Lit(True)))),
}


def _scalarize_op(
    node: EOp, cursor: str, column_of: dict[str, str] | None
) -> ScalarExpr:
    op = node.op
    if op == "opaque":
        raise NotScalarizable("opaque value")
    if op in CAPABLE_UNIMPLEMENTED_OPS:
        raise CapableButUnimplemented(op)
    if op == "+" and _is_string_concat(node):
        # Java's `+` coerces to string when any operand is a string; the
        # SQL form is CONCAT over the flattened chain.
        parts = [
            scalarize(p, cursor, column_of) for p in _flatten_plus(node)
        ]
        return Func("CONCAT", tuple(parts))
    children = [scalarize(c, cursor, column_of) for c in node.operands]
    if op in ("==", "!=") and len(children) == 2:
        # Java null comparisons are two-valued; SQL needs IS [NOT] NULL.
        null_side = None
        other = None
        if children[0] == Lit(None):
            null_side, other = children[0], children[1]
        elif children[1] == Lit(None):
            null_side, other = children[1], children[0]
        if null_side is not None:
            test: ScalarExpr = Func("ISNULL", (other,))
            if op == "!=":
                test = UnOp("NOT", test)
            return test
    if op in _BINARY_OPS and len(children) == 2:
        return BinOp(_BINARY_OPS[op], children[0], children[1])
    if op in _FUNC_OPS:
        return Func(_FUNC_OPS[op], tuple(children))
    if op in _COMBINE_OPS:
        return _COMBINE_OPS[op](children[0], children[1])
    if op == "coalesce":
        return Func("COALESCE", tuple(children))
    if op == "not_null":
        return UnOp("NOT", Func("ISNULL", (children[0],)))
    if op == "not":
        return UnOp("NOT", children[0])
    if op == "neg":
        return UnOp("-", children[0])
    if op == "?":
        return CaseWhen(children[0], children[1], children[2])
    if op in ("empty_list", "empty_set", "append", "insert", "tuple", "concat_list"):
        raise NotScalarizable(f"collection operator {op!r}")
    raise NotScalarizable(f"operator {op!r}")


def _is_string_concat(node: ENode) -> bool:
    """A `+` chain is string concatenation when any leaf is a string."""
    for part in _flatten_plus(node):
        if isinstance(part, EConst) and isinstance(part.value, str):
            return True
        if isinstance(part, EOp) and part.op in ("upper", "lower", "trim"):
            return True
    return False


def _flatten_plus(node: ENode) -> list[ENode]:
    if isinstance(node, EOp) and node.op == "+" and len(node.operands) == 2:
        return _flatten_plus(node.operands[0]) + _flatten_plus(node.operands[1])
    return [node]


def references_cursor(node: ENode, cursor: str) -> bool:
    """True when the expression reads the cursor tuple."""
    from ..ir import walk_enodes

    for n in walk_enodes(node):
        if isinstance(n, EBoundVar) and n.name == cursor:
            return True
    return False


def references_bound(node: ENode, name: str) -> bool:
    """True when the expression references ``EBoundVar(name)``."""
    from ..ir import walk_enodes

    for n in walk_enodes(node):
        if isinstance(n, EBoundVar) and n.name == name:
            return True
    return False
