"""SQL dialect abstraction.

The paper's Figure 3 notes "we illustrate using the GREATEST function of
PostgreSQL; translation into other dialects is possible using similar
functions, or using CASE..WHEN".  Appendix B emits SQL Server's OUTER APPLY
"equivalent to the left outer join version of the lateral construct".
Dialects here cover those variations.  ``ReproDialect`` is the executable
default: its output round-trips through :mod:`repro.sqlparse` so rewritten
programs run on the in-memory engine.
"""

from __future__ import annotations


class Dialect:
    """Base dialect: ANSI-leaning, CASE WHEN for GREATEST/LEAST."""

    name = "ansi"
    supports_greatest = False
    apply_style = "lateral"  # "lateral" | "outer_apply"

    def greatest(self, args: list[str]) -> str:
        if self.supports_greatest:
            return f"GREATEST({', '.join(args)})"
        return self._case_chain(args, ">")

    def least(self, args: list[str]) -> str:
        if self.supports_greatest:
            return f"LEAST({', '.join(args)})"
        return self._case_chain(args, "<")

    @staticmethod
    def _case_chain(args: list[str], op: str) -> str:
        result = args[0]
        for arg in args[1:]:
            result = f"CASE WHEN {result} {op} {arg} THEN {result} ELSE {arg} END"
        return result

    def outer_apply(self, left: str, right_subquery: str, alias: str) -> str:
        if self.apply_style == "outer_apply":
            return f"{left} OUTER APPLY ({right_subquery}) {alias}"
        return f"{left} LEFT JOIN LATERAL ({right_subquery}) {alias} ON TRUE"

    def limit(self, count: int) -> str:
        return f"LIMIT {count}"

    def bool_literal(self, value: bool) -> str:
        return "TRUE" if value else "FALSE"


class PostgresDialect(Dialect):
    name = "postgres"
    supports_greatest = True
    apply_style = "lateral"


class MySQLDialect(Dialect):
    name = "mysql"
    supports_greatest = True
    apply_style = "lateral"


class SQLServerDialect(Dialect):
    name = "sqlserver"
    supports_greatest = False
    apply_style = "outer_apply"

    def limit(self, count: int) -> str:  # TOP is prepended by the generator
        return f"__TOP__{count}"

    def bool_literal(self, value: bool) -> str:
        return "1" if value else "0"


class ReproDialect(Dialect):
    """The executable dialect: parseable by :mod:`repro.sqlparse`."""

    name = "repro"
    supports_greatest = True
    apply_style = "outer_apply"


DIALECTS: dict[str, Dialect] = {
    d.name: d
    for d in (Dialect(), PostgresDialect(), MySQLDialect(), SQLServerDialect(), ReproDialect())
}


def get_dialect(name: str) -> Dialect:
    try:
        return DIALECTS[name]
    except KeyError:
        raise KeyError(
            f"unknown dialect {name!r}; available: {sorted(DIALECTS)}"
        ) from None
