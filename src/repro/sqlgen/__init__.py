"""SQL generation: algebra → SQL text with dialect support."""

from .dialects import (
    DIALECTS,
    Dialect,
    MySQLDialect,
    PostgresDialect,
    ReproDialect,
    SQLServerDialect,
    get_dialect,
)
from .generator import SqlGenError, render_rel, render_scalar

__all__ = [
    "DIALECTS",
    "Dialect",
    "MySQLDialect",
    "PostgresDialect",
    "ReproDialect",
    "SQLServerDialect",
    "SqlGenError",
    "get_dialect",
    "render_rel",
    "render_scalar",
]
