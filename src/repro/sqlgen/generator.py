"""SQL text generation from relational algebra (paper Section 5.2).

``render_rel`` produces a SELECT statement; ``render_scalar`` produces a
scalar expression.  The default (``repro``) dialect's output round-trips
through :mod:`repro.sqlparse`, which is how rewritten programs execute on
the in-memory engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra import (
    AggCall,
    Aggregate,
    Alias,
    BinOp,
    CaseWhen,
    Col,
    Distinct,
    ExistsExpr,
    Func,
    Join,
    Limit,
    Lit,
    OuterApply,
    Param,
    Project,
    RelExpr,
    ScalarExpr,
    ScalarSubquery,
    Select,
    Sort,
    Table,
    UnOp,
)
from .dialects import Dialect, get_dialect


class SqlGenError(Exception):
    """Raised when an algebra tree has no SQL rendering."""


@dataclass
class _Statement:
    """A SELECT statement under construction."""

    from_clause: str = ""
    select_items: list[str] | None = None
    where: list[str] = field(default_factory=list)
    group_by: list[str] = field(default_factory=list)
    order_by: list[str] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False

    @property
    def shaped(self) -> bool:
        """True once grouping/ordering/limiting makes wrapping necessary."""
        return bool(self.group_by) or self.limit is not None or self.distinct

    def render(self, dialect: Dialect) -> str:
        items = ", ".join(self.select_items) if self.select_items else "*"
        head = "SELECT DISTINCT" if self.distinct else "SELECT"
        if self.limit is not None and dialect.name == "sqlserver":
            head = f"{head} TOP {self.limit}"
        parts = [f"{head} {items}", f"FROM {self.from_clause}"]
        if self.where:
            # Fold conjuncts left-associatively with explicit parentheses so
            # rendering is a fixpoint under re-parsing.
            combined = self.where[0]
            for conjunct in self.where[1:]:
                combined = f"({combined} AND {conjunct})"
            parts.append(f"WHERE {combined}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(self.group_by))
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(self.order_by))
        if self.limit is not None and dialect.name != "sqlserver":
            parts.append(dialect.limit(self.limit))
        return " ".join(parts)


def render_rel(rel: RelExpr, dialect: str | Dialect = "repro") -> str:
    """Render a relational algebra tree as one SQL SELECT statement."""
    d = get_dialect(dialect) if isinstance(dialect, str) else dialect
    return _Generator(d).statement(rel).render(d)


def render_scalar(expr: ScalarExpr, dialect: str | Dialect = "repro") -> str:
    """Render a scalar expression as SQL text."""
    d = get_dialect(dialect) if isinstance(dialect, str) else dialect
    return _Generator(d).scalar(expr)


class _Generator:
    def __init__(self, dialect: Dialect):
        self.dialect = dialect

    # ------------------------------------------------------------------
    # Relational

    def statement(self, rel: RelExpr) -> _Statement:
        if isinstance(rel, Table):
            clause = rel.name if not rel.alias or rel.alias == rel.name else f"{rel.name} {rel.alias}"
            return _Statement(from_clause=clause)
        if isinstance(rel, Alias):
            inner = self.statement(rel.child)
            if not inner.shaped and inner.select_items is None and not inner.where and " " not in inner.from_clause.strip():
                return _Statement(from_clause=f"{inner.from_clause} {rel.name}")
            return _Statement(
                from_clause=f"({inner.render(self.dialect)}) {rel.name}"
            )
        if isinstance(rel, Select):
            stmt = self.statement(rel.child)
            if stmt.shaped or stmt.select_items is not None:
                stmt = self._wrap(stmt)
            stmt.where.append(self.scalar(rel.pred))
            return stmt
        if isinstance(rel, Project):
            stmt = self.statement(rel.child)
            if stmt.select_items is not None or stmt.shaped:
                stmt = self._wrap(stmt)
            stmt.select_items = [self._project_item(i) for i in rel.items]
            return stmt
        if isinstance(rel, Aggregate):
            stmt = self.statement(rel.child)
            if stmt.select_items is not None or stmt.shaped:
                stmt = self._wrap(stmt)
            items = [self.scalar(g) for g in rel.group_by]
            for agg in rel.aggs:
                rendered = self._agg_call(agg.call)
                if agg.alias:
                    rendered = f"{rendered} AS {agg.alias}"
                items.append(rendered)
            stmt.select_items = items
            stmt.group_by = [self.scalar(g) for g in rel.group_by]
            return stmt
        if isinstance(rel, Sort):
            stmt = self.statement(rel.child)
            if stmt.limit is not None:
                stmt = self._wrap(stmt)
            stmt.order_by = [
                f"{self.scalar(k.expr)} {'ASC' if k.ascending else 'DESC'}"
                for k in rel.keys
            ]
            return stmt
        if isinstance(rel, Distinct):
            stmt = self.statement(rel.child)
            if stmt.distinct or stmt.limit is not None:
                stmt = self._wrap(stmt)
            stmt.distinct = True
            return stmt
        if isinstance(rel, Limit):
            stmt = self.statement(rel.child)
            if stmt.limit is not None:
                stmt = self._wrap(stmt)
            stmt.limit = rel.count
            return stmt
        if isinstance(rel, Join):
            return self._join_statement(rel)
        if isinstance(rel, OuterApply):
            return self._apply_statement(rel)
        raise SqlGenError(f"cannot render {type(rel).__name__}")

    def _project_item(self, item) -> str:
        rendered = self.scalar(item.expr)
        if item.alias and item.alias != rendered:
            return f"{rendered} AS {item.alias}"
        return rendered

    def _wrap(self, stmt: _Statement) -> _Statement:
        return _Statement(from_clause=f"({stmt.render(self.dialect)}) w")

    def _table_ref(self, rel: RelExpr) -> tuple[str, list[str]]:
        """Render a join operand as a FROM-clause table reference.

        Returns (reference text, predicates to pull into the outer WHERE).
        Plain selections over base tables are flattened, matching how the
        paper's examples print joins.
        """
        if isinstance(rel, Table):
            alias = rel.alias or rel.name
            text = rel.name if alias == rel.name else f"{rel.name} {alias}"
            return text, []
        if isinstance(rel, Select):
            inner, preds = self._table_ref(rel.child)
            return inner, preds + [self.scalar(rel.pred)]
        if isinstance(rel, Alias):
            stmt = self.statement(rel.child)
            return f"({stmt.render(self.dialect)}) {rel.name}", []
        stmt = self.statement(rel)
        return f"({stmt.render(self.dialect)}) j", []

    def _join_statement(self, rel: Join) -> _Statement:
        left_ref, left_preds = self._table_ref(rel.left)
        right_ref, right_preds = self._table_ref(rel.right)
        if rel.kind == "left" and right_preds:
            # Cannot hoist the right side's predicate out of a left join.
            stmt = self.statement(rel.right)
            right_ref, right_preds = f"({stmt.render(self.dialect)}) r", []
        keyword = {"inner": "JOIN", "left": "LEFT JOIN", "cross": "CROSS JOIN"}[
            rel.kind
        ]
        on = f" ON {self.scalar(rel.pred)}" if rel.pred is not None else (
            " ON TRUE" if rel.kind != "cross" else ""
        )
        stmt = _Statement(from_clause=f"{left_ref} {keyword} {right_ref}{on}")
        stmt.where.extend(left_preds + right_preds)
        return stmt

    def _apply_statement(self, rel: OuterApply) -> _Statement:
        # Selections on the left commute with OUTER APPLY (rows filtered out
        # contribute nothing either way), so hoist them to the outer WHERE —
        # this keeps the left table's alias visible to the applied subquery.
        if isinstance(rel.left, (Table, Select, OuterApply, Alias)):
            left_clause, left_preds = self._apply_left_ref(rel.left)
        else:
            left_stmt = self.statement(rel.left)
            left_clause, left_preds = f"({left_stmt.render(self.dialect)}) q1", []
        if isinstance(rel.right, Alias):
            alias = rel.right.name
            subquery = self.statement(rel.right.child).render(self.dialect)
        else:
            alias = "ap"
            subquery = self.statement(rel.right).render(self.dialect)
        clause = self.dialect.outer_apply(left_clause, subquery, alias)
        stmt = _Statement(from_clause=clause)
        stmt.where.extend(left_preds)
        return stmt

    def _apply_left_ref(self, rel: RelExpr) -> tuple[str, list[str]]:
        """FROM-clause text for the left side of an apply, with hoisted
        selection predicates."""
        if isinstance(rel, Select):
            inner, preds = self._apply_left_ref(rel.child)
            return inner, preds + [self.scalar(rel.pred)]
        if isinstance(rel, Table):
            alias = rel.alias or rel.name
            text = rel.name if alias == rel.name else f"{rel.name} {alias}"
            return text, []
        if isinstance(rel, Alias):
            stmt = self.statement(rel.child)
            return f"({stmt.render(self.dialect)}) {rel.name}", []
        if isinstance(rel, OuterApply):
            stmt = self._apply_statement(rel)
            return stmt.from_clause, stmt.where
        stmt = self.statement(rel)
        return f"({stmt.render(self.dialect)}) q1", []

    # ------------------------------------------------------------------
    # Scalars

    def scalar(self, expr: ScalarExpr) -> str:
        if isinstance(expr, Lit):
            return self._literal(expr.value)
        if isinstance(expr, Col):
            return f"{expr.qualifier}.{expr.name}" if expr.qualifier else expr.name
        if isinstance(expr, Param):
            return f":{expr.name}"
        if isinstance(expr, BinOp):
            op = "=" if expr.op == "=" else expr.op
            return f"({self.scalar(expr.left)} {op} {self.scalar(expr.right)})"
        if isinstance(expr, UnOp):
            if expr.op.upper() == "NOT":
                inner = expr.operand
                if isinstance(inner, Func) and inner.name.upper() == "ISNULL":
                    return f"({self.scalar(inner.args[0])} IS NOT NULL)"
                if isinstance(inner, ExistsExpr):
                    return f"NOT EXISTS ({render_rel(inner.query, self.dialect)})"
                return f"NOT ({self.scalar(inner)})"
            return f"{expr.op}({self.scalar(expr.operand)})"
        if isinstance(expr, Func):
            return self._function(expr)
        if isinstance(expr, AggCall):
            return self._agg_call(expr)
        if isinstance(expr, CaseWhen):
            return (
                f"CASE WHEN {self.scalar(expr.cond)} THEN {self.scalar(expr.if_true)}"
                f" ELSE {self.scalar(expr.if_false)} END"
            )
        if isinstance(expr, ExistsExpr):
            keyword = "NOT EXISTS" if expr.negated else "EXISTS"
            return f"{keyword} ({render_rel(expr.query, self.dialect)})"
        if isinstance(expr, ScalarSubquery):
            return f"({render_rel(expr.query, self.dialect)})"
        raise SqlGenError(f"cannot render scalar {type(expr).__name__}")

    def _function(self, expr: Func) -> str:
        name = expr.name.upper()
        args = [self.scalar(a) for a in expr.args]
        if name == "GREATEST":
            return self.dialect.greatest(args)
        if name == "LEAST":
            return self.dialect.least(args)
        if name == "ISNULL":
            return f"({args[0]} IS NULL)"
        return f"{name}({', '.join(args)})"

    def _agg_call(self, call: AggCall) -> str:
        if call.arg is None:
            return f"{call.func.upper()}(*)"
        inner = self.scalar(call.arg)
        if call.distinct:
            inner = f"DISTINCT {inner}"
        return f"{call.func.upper()}({inner})"

    def _literal(self, value) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return self.dialect.bool_literal(value)
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        return str(value)
