"""AST normalisations applied before D-IR construction.

The paper describes these preprocessing steps:

* *output statements* — "we preprocess the program to replace output
  statements with appends to a (global) string (which can be treated as an
  ordered collection), and print its contents at the end" (Section 2 /
  Appendix B).  We append printed values to the global ordered collection
  ``__out__``.
* *JDBC cursor loops* — ``rs = executeQuery(...); while (rs.next()) {...}``
  is the cursor-loop idiom over a result set; it is normalised into the
  equivalent ``for (rs : executeQuery(...)) {...}``.
* *tail returns* — ``if (c) { ...; return a; } rest`` becomes
  ``if (c) { ...; return a; } else { rest }`` so that conditional-region
  merging sees both arms.
* *boolean early exit* — ``for (t : Q) { if (p) { found = true; break; } }``
  drops the ``break`` (Appendix B: "the return/break can potentially be
  removed" when the only computation is the boolean assignment).

On top of the paper's normalisations sits the **precision layer** (enabled
by default, disabled with ``precision=False``): SSA-based sparse
conditional constant propagation and copy propagation from
:mod:`repro.analysis.ssa`, applied as three AST-level enabling transforms
before the D-IR translation —

* **constant folding** — variable uses with a proven constant value become
  literals (carrying the span of the use they replace), and pure operator
  trees over literals fold;
* **dead-branch pruning** — an ``if`` whose guard is a proven boolean
  constant is replaced by its live arm.  Guards containing calls never
  fold (calls are lattice-bottom), so a pruned branch is genuinely
  unreachable and any lint blocker inside it is discharged for free;
* **copy propagation** — a use of ``x`` whose value is provably the same
  SSA version as some earlier ``x = y`` copy source is rewritten to ``y``,
  and the cursor-``while`` normalisation follows such copy chains
  (``q = executeQuery(...); rs = q; while (rs.next())``).

Every transform preserves source spans: folded literals inherit the span
of the expression they replace, pruned arms splice their statements (and
spans) into the parent block, and copy propagation rebinds only the
identifier of an existing ``Name`` node.
"""

from __future__ import annotations

import copy
from dataclasses import fields as dataclass_fields

from ..analysis.dataflow import all_reads, all_writes
from ..analysis.effects import EffectSummary, function_effects
from ..analysis.ssa import SCCPResult, SSAForm, build_ssa, resolve_copy, sccp
from ..interp.values import setter_to_column
from ..lang import (
    Assign,
    Block,
    BoolLit,
    Break,
    Call,
    Expr,
    ExprStmt,
    FieldAccess,
    ForEach,
    FunctionDef,
    If,
    IntLit,
    MethodCall,
    Name,
    New,
    Program,
    Return,
    Stmt,
    StringLit,
    TryCatch,
    While,
    number_statements,
    statement_expressions,
    walk_statements,
)

OUT_VAR = "__out__"


def preprocess_program(program: Program, precision: bool = True) -> Program:
    """Return a normalised deep copy of ``program`` (ids renumbered).

    ``precision`` toggles the SSA-based enabling transforms (constant
    folding, dead-branch pruning, copy propagation); the paper's own
    normalisations always run.
    """
    result = copy.deepcopy(program)
    effects = function_effects(result) if precision else None
    for func in result.functions:
        _preprocess_function(func, effects=effects, precision=precision)
    number_statements(result)
    return result


def _preprocess_function(
    func: FunctionDef,
    effects: dict[str, EffectSummary] | None = None,
    precision: bool = True,
) -> None:
    had_prints = _rewrite_prints(func.body)
    if precision:
        _apply_precision(func, effects)
    _normalize_cursor_while(func.body, precision=precision)
    _normalize_boolean_return_loops(func.body)
    _normalize_tail_returns(func.body)
    _drop_unreachable(func.body)
    _remove_boolean_breaks(func.body)
    if had_prints:
        init = Assign(target=OUT_VAR, value=New(class_name="ArrayList", args=[]))
        func.body.statements.insert(0, init)


# ----------------------------------------------------------------------
# Precision layer: SSA-driven enabling transforms


def _apply_precision(
    func: FunctionDef, effects: dict[str, EffectSummary] | None
) -> None:
    # Folding can expose new dead branches and pruning can expose new
    # constants, so iterate fold+prune to a (small) fixpoint before the
    # single copy-propagation round.
    for _round in range(4):
        number_statements(func)
        result = sccp(build_ssa(func, effects))
        changed = _fold_constants(func, result)
        changed |= _prune_dead_branches(func.body, result)
        if not changed:
            break
    number_statements(func)
    _propagate_copies(func, build_ssa(func, effects))


def _literal_for(value, template: Expr) -> Expr | None:
    """A literal node for a proven constant, carrying ``template``'s span."""
    if isinstance(value, bool):
        return BoolLit(value=value, line=template.line, col=template.col)
    if isinstance(value, int):
        return IntLit(value=value, line=template.line, col=template.col)
    if isinstance(value, str):
        return StringLit(value=value, line=template.line, col=template.col)
    return None


def _fold_constants(func: FunctionDef, result: SCCPResult) -> bool:
    """Replace proven-constant variable uses (and the pure operator trees
    they complete) with literal nodes, in executable statements only."""
    executable_sids = {
        stmt.sid
        for block in result.ssa.cfg.blocks
        if block.index in result.executable_blocks
        for stmt in block.statements
    }
    changed = False

    def fold(expr: Expr, sid: int) -> Expr:
        nonlocal changed
        if isinstance(expr, Name):
            const = result.const_at(sid, expr.ident)
            literal = None if const is None else _literal_for(const, expr)
            if literal is not None:
                changed = True
                return literal
            return expr
        _rewrite_children(expr, lambda child: fold(child, sid))
        value = result.eval_at(sid, expr)
        literal = None if value is None else _literal_for(value, expr)
        if literal is not None and not isinstance(
            expr, (IntLit, BoolLit, StringLit)
        ):
            changed = True
            return literal
        return expr

    for stmt in walk_statements(func.body):
        if stmt.sid not in executable_sids:
            continue
        _rewrite_stmt_exprs(stmt, lambda expr: fold(expr, stmt.sid))
    return changed


def _prune_dead_branches(block: Block, result: SCCPResult) -> bool:
    """Replace each If with a proven-dead arm by its live arm's statements."""
    changed = False
    rebuilt: list[Stmt] = []
    for stmt in block.statements:
        verdict = (
            result.dead_branches.get(stmt.sid) if isinstance(stmt, If) else None
        )
        if verdict == "then":
            changed = True
            if stmt.else_body is not None:
                _prune_dead_branches(stmt.else_body, result)
                rebuilt.extend(stmt.else_body.statements)
            continue
        if verdict == "else":
            changed = True
            _prune_dead_branches(stmt.then_body, result)
            rebuilt.extend(stmt.then_body.statements)
            continue
        for child in _child_blocks(stmt):
            changed |= _prune_dead_branches(child, result)
        rebuilt.append(stmt)
    block.statements[:] = rebuilt
    return changed


#: Method-call receivers that must keep their original name: rewriting the
#: receiver of a mutating/consuming call would change which variable the
#: analyses see as redefined (the objects alias, but lint attribution and
#: the SSA def model key on the name).
_RECEIVER_PRESERVING = {"next", "close"}


def _propagate_copies(func: FunctionDef, ssa: SSAForm) -> None:
    from ..analysis.dataflow import _MUTATING_METHODS

    def rewrite(expr: Expr, sid: int) -> Expr:
        if isinstance(expr, Name):
            source = resolve_copy(ssa, sid, expr.ident)
            if source is not None:
                expr.ident = source  # span stays with the original use
            return expr
        if isinstance(expr, MethodCall):
            preserve = (
                expr.method in _MUTATING_METHODS
                or expr.method in _RECEIVER_PRESERVING
                or setter_to_column(expr.method) is not None
            )
            if not (preserve and isinstance(expr.receiver, Name)):
                expr.receiver = rewrite(expr.receiver, sid)
            expr.args = [rewrite(arg, sid) for arg in expr.args]
            return expr
        _rewrite_children(expr, lambda child: rewrite(child, sid))
        return expr

    for stmt in walk_statements(func.body):
        _rewrite_stmt_exprs(stmt, lambda expr: rewrite(expr, stmt.sid))


def _rewrite_children(expr: Expr, fn) -> None:
    """Apply ``fn`` to each direct sub-expression of ``expr``, in place."""
    for f in dataclass_fields(expr):
        value = getattr(expr, f.name)
        if isinstance(value, Expr):
            setattr(expr, f.name, fn(value))
        elif isinstance(value, list) and value and isinstance(value[0], Expr):
            setattr(expr, f.name, [fn(item) for item in value])


def _rewrite_stmt_exprs(stmt: Stmt, fn) -> None:
    if isinstance(stmt, Assign):
        stmt.value = fn(stmt.value)
    elif isinstance(stmt, ExprStmt):
        stmt.expr = fn(stmt.expr)
    elif isinstance(stmt, If):
        stmt.cond = fn(stmt.cond)
    elif isinstance(stmt, While):
        stmt.cond = fn(stmt.cond)
    elif isinstance(stmt, ForEach):
        stmt.iterable = fn(stmt.iterable)
    elif isinstance(stmt, Return) and stmt.value is not None:
        stmt.value = fn(stmt.value)


# ----------------------------------------------------------------------
# print → __out__ appends


def _rewrite_prints(block: Block) -> bool:
    changed = False
    for i, stmt in enumerate(block.statements):
        if isinstance(stmt, ExprStmt):
            printed = _printed_value(stmt.expr)
            if printed is not None:
                block.statements[i] = ExprStmt(
                    expr=MethodCall(
                        receiver=Name(OUT_VAR), method="add", args=[printed]
                    ),
                    line=stmt.line,
                    col=stmt.col,
                )
                changed = True
                continue
        for child in _child_blocks(stmt):
            changed |= _rewrite_prints(child)
    return changed


def _printed_value(expr: Expr) -> Expr | None:
    if isinstance(expr, Call) and expr.func in ("print", "println"):
        return expr.args[0] if expr.args else None
    if (
        isinstance(expr, MethodCall)
        and expr.method in ("println", "print")
        and isinstance(expr.receiver, FieldAccess)
        and isinstance(expr.receiver.receiver, Name)
        and expr.receiver.receiver.ident == "System"
    ):
        return expr.args[0] if expr.args else None
    return None


# ----------------------------------------------------------------------
# while (rs.next()) → for (rs : ...)


def _normalize_cursor_while(block: Block, precision: bool = True) -> None:
    for i, stmt in enumerate(block.statements):
        for child in _child_blocks(stmt):
            _normalize_cursor_while(child, precision=precision)
        if not (
            isinstance(stmt, While)
            and isinstance(stmt.cond, MethodCall)
            and stmt.cond.method == "next"
            and isinstance(stmt.cond.receiver, Name)
        ):
            continue
        cursor = stmt.cond.receiver.ident
        if _cursor_escapes_as_value(stmt.body, cursor):
            continue
        # Find the defining query assignment earlier in this block (other
        # statements such as accumulator initialisations may intervene).
        defining: Assign | None = None
        iterable = cursor
        for prior in reversed(block.statements[:i]):
            if isinstance(prior, Assign) and prior.target == cursor:
                if (
                    isinstance(prior.value, Call)
                    and prior.value.func in ("executeQuery", "executeQueryCursor")
                ):
                    defining = prior
                break
        if defining is None and precision:
            chain = _resolve_cursor_chain(block.statements[:i], cursor)
            if chain is not None:
                defining, iterable = chain
        if defining is None:
            continue
        defining.value = Call(
            func="executeQuery", args=defining.value.args,
            line=defining.line, col=defining.col,
        )
        # `for (rs : rs)` — the iterable is evaluated before the cursor
        # variable is rebound per row, so the self-shadowing is sound, and
        # the body's `rs.getX(...)` accessors keep working unchanged.  For a
        # copy chain the iterable is the chain's ultimate source variable
        # (`for (rs : q)`), which aliases the same materialised list.
        block.statements[i] = ForEach(
            var=cursor, iterable=Name(iterable), body=stmt.body,
            line=stmt.line, col=stmt.col,
        )


def _cursor_escapes_as_value(body: Block, cursor: str) -> bool:
    """True when the loop body uses the cursor other than as a getter receiver.

    The rewrite to ``for (rs : ...)`` rebinds ``rs`` to each *row*, which is
    only equivalent while the body merely reads fields through it.  Storing,
    passing, or returning the bare cursor observes the cursor object itself
    (``v.add(rs)`` would collect rows instead of the cursor), and advancing
    or closing it mid-body changes how many rows the loop sees — any such
    use leaves the ``while`` un-normalised.
    """

    def escapes(expr: Expr) -> bool:
        if isinstance(expr, Name):
            return expr.ident == cursor
        if isinstance(expr, MethodCall):
            receiver_is_cursor = (
                isinstance(expr.receiver, Name)
                and expr.receiver.ident == cursor
            )
            if receiver_is_cursor:
                if expr.method in ("next", "close"):
                    return True  # consumes the cursor mid-iteration
            elif escapes(expr.receiver):
                return True
            return any(escapes(arg) for arg in expr.args)
        for f in dataclass_fields(expr):
            value = getattr(expr, f.name)
            if isinstance(value, Expr) and escapes(value):
                return True
            if isinstance(value, list) and any(
                isinstance(item, Expr) and escapes(item) for item in value
            ):
                return True
        return False

    return any(
        escapes(expr)
        for inner in walk_statements(body)
        for expr in statement_expressions(inner)
    )


def _resolve_cursor_chain(
    prefix: list[Stmt], cursor: str
) -> tuple[Assign, str] | None:
    """Follow ``rs = q`` copies back to a query assignment.

    Strict about everything between the query call and the ``while``:
    besides the chain's own copy assignments, no statement may read *or*
    write any chain variable — a read could consume the cursor, and
    materialising it to a list would then change what the loop sees.
    (The direct single-variable pattern above keeps its historical, laxer
    matching.)
    """
    target = cursor
    chain_vars = {cursor}
    chain_positions: set[int] = set()
    defining: Assign | None = None
    start = -1
    j = len(prefix) - 1
    while j >= 0:
        stmt = prefix[j]
        if isinstance(stmt, Assign) and stmt.target == target:
            if isinstance(stmt.value, Call) and stmt.value.func in (
                "executeQuery",
                "executeQueryCursor",
            ):
                defining = stmt
                start = j
                break
            if isinstance(stmt.value, Name):
                chain_positions.add(j)
                target = stmt.value.ident
                if target in chain_vars:
                    return None
                chain_vars.add(target)
                j -= 1
                continue
            return None
        j -= 1
    if defining is None or target == cursor:
        return None
    for k in range(start + 1, len(prefix)):
        if k in chain_positions:
            continue
        stmt = prefix[k]
        if chain_vars & (all_reads(stmt) | all_writes(stmt)):
            return None
    return defining, target


# ----------------------------------------------------------------------
# Tail-return normalisation and unreachable-code removal


def _normalize_tail_returns(block: Block) -> None:
    for stmt in block.statements:
        for child in _child_blocks(stmt):
            _normalize_tail_returns(child)
    i = 0
    while i < len(block.statements):
        stmt = block.statements[i]
        rest = block.statements[i + 1 :]
        if (
            isinstance(stmt, If)
            and stmt.else_body is None
            and _ends_with_return(stmt.then_body)
            and rest
        ):
            stmt.else_body = Block(statements=rest)
            _normalize_tail_returns(stmt.else_body)
            del block.statements[i + 1 :]
            return
        i += 1


def _ends_with_return(block: Block) -> bool:
    return bool(block.statements) and isinstance(block.statements[-1], Return)


def _drop_unreachable(block: Block) -> None:
    for i, stmt in enumerate(block.statements):
        for child in _child_blocks(stmt):
            _drop_unreachable(child)
        if isinstance(stmt, (Return, Break)):
            del block.statements[i + 1 :]
            return


# ----------------------------------------------------------------------
# Boolean return-based existence checks (Appendix B: "sometimes the loop
# can have an early exit ... if the only computation inside the loop is the
# boolean value assignment, the return/break can potentially be removed").
#
#     for (t : Q) { if (p) { return true; } }
#     return false;
#
# becomes the flag form the existence rules recognise:
#
#     __ret_flag0 = false;
#     for (t : Q) { if (p) { __ret_flag0 = true; } }
#     return __ret_flag0;

_flag_counter = 0


def _normalize_boolean_return_loops(block: Block) -> None:
    global _flag_counter
    for stmt in block.statements:
        for child in _child_blocks(stmt):
            _normalize_boolean_return_loops(child)
    i = 0
    while i < len(block.statements):
        stmt = block.statements[i]
        rest = block.statements[i + 1 :]
        if (
            isinstance(stmt, ForEach)
            and len(stmt.body.statements) == 1
            and isinstance(stmt.body.statements[0], If)
            and rest
            and isinstance(rest[0], Return)
            and isinstance(rest[0].value, BoolLit)
        ):
            branch = stmt.body.statements[0]
            then = branch.then_body.statements
            if (
                branch.else_body is None
                and len(then) == 1
                and isinstance(then[0], Return)
                and isinstance(then[0].value, BoolLit)
                and then[0].value.value != rest[0].value.value
            ):
                flag = f"__ret_flag{_flag_counter}"
                _flag_counter += 1
                inner_value = then[0].value
                default_value = rest[0].value
                branch.then_body.statements[0] = Assign(target=flag, value=inner_value)
                block.statements[i : i + 2] = [
                    Assign(target=flag, value=default_value),
                    stmt,
                    Return(value=Name(flag)),
                ]
                i += 2
        i += 1


# ----------------------------------------------------------------------
# Boolean early-exit removal


def _remove_boolean_breaks(block: Block) -> None:
    for stmt in block.statements:
        for child in _child_blocks(stmt):
            _remove_boolean_breaks(child)
        if isinstance(stmt, ForEach):
            _try_remove_break(stmt)


def _try_remove_break(loop: ForEach) -> None:
    """Drop a ``break`` that immediately follows a boolean assignment when it
    is the loop body's only other computation."""
    body = loop.body.statements
    if len(body) != 1 or not isinstance(body[0], If):
        return
    branch = body[0]
    if branch.else_body is not None:
        return
    then = branch.then_body.statements
    if (
        len(then) == 2
        and isinstance(then[0], Assign)
        and isinstance(then[0].value, BoolLit)
        and isinstance(then[1], Break)
    ):
        del then[1]


def _child_blocks(stmt: Stmt) -> list[Block]:
    if isinstance(stmt, Block):
        return [stmt]
    if isinstance(stmt, If):
        blocks = [stmt.then_body]
        if stmt.else_body is not None:
            blocks.append(stmt.else_body)
        return blocks
    if isinstance(stmt, (ForEach, While)):
        return [stmt.body]
    if isinstance(stmt, TryCatch):
        blocks = [stmt.try_body]
        if stmt.catch_body is not None:
            blocks.append(stmt.catch_body)
        if stmt.finally_body is not None:
            blocks.append(stmt.finally_body)
        return blocks
    return []
