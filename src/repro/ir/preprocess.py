"""AST normalisations applied before D-IR construction.

The paper describes these preprocessing steps:

* *output statements* — "we preprocess the program to replace output
  statements with appends to a (global) string (which can be treated as an
  ordered collection), and print its contents at the end" (Section 2 /
  Appendix B).  We append printed values to the global ordered collection
  ``__out__``.
* *JDBC cursor loops* — ``rs = executeQuery(...); while (rs.next()) {...}``
  is the cursor-loop idiom over a result set; it is normalised into the
  equivalent ``for (rs : executeQuery(...)) {...}``.
* *tail returns* — ``if (c) { ...; return a; } rest`` becomes
  ``if (c) { ...; return a; } else { rest }`` so that conditional-region
  merging sees both arms.
* *boolean early exit* — ``for (t : Q) { if (p) { found = true; break; } }``
  drops the ``break`` (Appendix B: "the return/break can potentially be
  removed" when the only computation is the boolean assignment).
"""

from __future__ import annotations

import copy

from ..lang import (
    Assign,
    Block,
    BoolLit,
    Break,
    Call,
    Expr,
    ExprStmt,
    FieldAccess,
    ForEach,
    FunctionDef,
    If,
    MethodCall,
    Name,
    New,
    Program,
    Return,
    Stmt,
    TryCatch,
    While,
    number_statements,
)

OUT_VAR = "__out__"


def preprocess_program(program: Program) -> Program:
    """Return a normalised deep copy of ``program`` (ids renumbered)."""
    result = copy.deepcopy(program)
    for func in result.functions:
        _preprocess_function(func)
    number_statements(result)
    return result


def _preprocess_function(func: FunctionDef) -> None:
    had_prints = _rewrite_prints(func.body)
    _normalize_cursor_while(func.body)
    _normalize_boolean_return_loops(func.body)
    _normalize_tail_returns(func.body)
    _drop_unreachable(func.body)
    _remove_boolean_breaks(func.body)
    if had_prints:
        init = Assign(target=OUT_VAR, value=New(class_name="ArrayList", args=[]))
        func.body.statements.insert(0, init)


# ----------------------------------------------------------------------
# print → __out__ appends


def _rewrite_prints(block: Block) -> bool:
    changed = False
    for i, stmt in enumerate(block.statements):
        if isinstance(stmt, ExprStmt):
            printed = _printed_value(stmt.expr)
            if printed is not None:
                block.statements[i] = ExprStmt(
                    expr=MethodCall(
                        receiver=Name(OUT_VAR), method="add", args=[printed]
                    ),
                    line=stmt.line,
                    col=stmt.col,
                )
                changed = True
                continue
        for child in _child_blocks(stmt):
            changed |= _rewrite_prints(child)
    return changed


def _printed_value(expr: Expr) -> Expr | None:
    if isinstance(expr, Call) and expr.func in ("print", "println"):
        return expr.args[0] if expr.args else None
    if (
        isinstance(expr, MethodCall)
        and expr.method in ("println", "print")
        and isinstance(expr.receiver, FieldAccess)
        and isinstance(expr.receiver.receiver, Name)
        and expr.receiver.receiver.ident == "System"
    ):
        return expr.args[0] if expr.args else None
    return None


# ----------------------------------------------------------------------
# while (rs.next()) → for (rs : ...)


def _normalize_cursor_while(block: Block) -> None:
    for i, stmt in enumerate(block.statements):
        for child in _child_blocks(stmt):
            _normalize_cursor_while(child)
        if not (
            isinstance(stmt, While)
            and isinstance(stmt.cond, MethodCall)
            and stmt.cond.method == "next"
            and isinstance(stmt.cond.receiver, Name)
        ):
            continue
        cursor = stmt.cond.receiver.ident
        # Find the defining query assignment earlier in this block (other
        # statements such as accumulator initialisations may intervene).
        defining: Assign | None = None
        for prior in reversed(block.statements[:i]):
            if isinstance(prior, Assign) and prior.target == cursor:
                if (
                    isinstance(prior.value, Call)
                    and prior.value.func in ("executeQuery", "executeQueryCursor")
                ):
                    defining = prior
                break
        if defining is None:
            continue
        defining.value = Call(
            func="executeQuery", args=defining.value.args,
            line=defining.line, col=defining.col,
        )
        # `for (rs : rs)` — the iterable is evaluated before the cursor
        # variable is rebound per row, so the self-shadowing is sound, and
        # the body's `rs.getX(...)` accessors keep working unchanged.
        block.statements[i] = ForEach(
            var=cursor, iterable=Name(cursor), body=stmt.body,
            line=stmt.line, col=stmt.col,
        )


# ----------------------------------------------------------------------
# Tail-return normalisation and unreachable-code removal


def _normalize_tail_returns(block: Block) -> None:
    for stmt in block.statements:
        for child in _child_blocks(stmt):
            _normalize_tail_returns(child)
    i = 0
    while i < len(block.statements):
        stmt = block.statements[i]
        rest = block.statements[i + 1 :]
        if (
            isinstance(stmt, If)
            and stmt.else_body is None
            and _ends_with_return(stmt.then_body)
            and rest
        ):
            stmt.else_body = Block(statements=rest)
            _normalize_tail_returns(stmt.else_body)
            del block.statements[i + 1 :]
            return
        i += 1


def _ends_with_return(block: Block) -> bool:
    return bool(block.statements) and isinstance(block.statements[-1], Return)


def _drop_unreachable(block: Block) -> None:
    for i, stmt in enumerate(block.statements):
        for child in _child_blocks(stmt):
            _drop_unreachable(child)
        if isinstance(stmt, (Return, Break)):
            del block.statements[i + 1 :]
            return


# ----------------------------------------------------------------------
# Boolean return-based existence checks (Appendix B: "sometimes the loop
# can have an early exit ... if the only computation inside the loop is the
# boolean value assignment, the return/break can potentially be removed").
#
#     for (t : Q) { if (p) { return true; } }
#     return false;
#
# becomes the flag form the existence rules recognise:
#
#     __ret_flag0 = false;
#     for (t : Q) { if (p) { __ret_flag0 = true; } }
#     return __ret_flag0;

_flag_counter = 0


def _normalize_boolean_return_loops(block: Block) -> None:
    global _flag_counter
    for stmt in block.statements:
        for child in _child_blocks(stmt):
            _normalize_boolean_return_loops(child)
    i = 0
    while i < len(block.statements):
        stmt = block.statements[i]
        rest = block.statements[i + 1 :]
        if (
            isinstance(stmt, ForEach)
            and len(stmt.body.statements) == 1
            and isinstance(stmt.body.statements[0], If)
            and rest
            and isinstance(rest[0], Return)
            and isinstance(rest[0].value, BoolLit)
        ):
            branch = stmt.body.statements[0]
            then = branch.then_body.statements
            if (
                branch.else_body is None
                and len(then) == 1
                and isinstance(then[0], Return)
                and isinstance(then[0].value, BoolLit)
                and then[0].value.value != rest[0].value.value
            ):
                flag = f"__ret_flag{_flag_counter}"
                _flag_counter += 1
                inner_value = then[0].value
                default_value = rest[0].value
                branch.then_body.statements[0] = Assign(target=flag, value=inner_value)
                block.statements[i : i + 2] = [
                    Assign(target=flag, value=default_value),
                    stmt,
                    Return(value=Name(flag)),
                ]
                i += 2
        i += 1


# ----------------------------------------------------------------------
# Boolean early-exit removal


def _remove_boolean_breaks(block: Block) -> None:
    for stmt in block.statements:
        for child in _child_blocks(stmt):
            _remove_boolean_breaks(child)
        if isinstance(stmt, ForEach):
            _try_remove_break(stmt)


def _try_remove_break(loop: ForEach) -> None:
    """Drop a ``break`` that immediately follows a boolean assignment when it
    is the loop body's only other computation."""
    body = loop.body.statements
    if len(body) != 1 or not isinstance(body[0], If):
        return
    branch = body[0]
    if branch.else_body is not None:
        return
    then = branch.then_body.statements
    if (
        len(then) == 2
        and isinstance(then[0], Assign)
        and isinstance(then[0].value, BoolLit)
        and isinstance(then[1], Break)
    ):
        del then[1]


def _child_blocks(stmt: Stmt) -> list[Block]:
    if isinstance(stmt, Block):
        return [stmt]
    if isinstance(stmt, If):
        blocks = [stmt.then_body]
        if stmt.else_body is not None:
            blocks.append(stmt.else_body)
        return blocks
    if isinstance(stmt, (ForEach, While)):
        return [stmt.body]
    if isinstance(stmt, TryCatch):
        blocks = [stmt.try_body]
        if stmt.catch_body is not None:
            blocks.append(stmt.catch_body)
        if stmt.finally_body is not None:
            blocks.append(stmt.finally_body)
        return blocks
    return []
