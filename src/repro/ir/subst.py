"""Substitution over ee-DAG expressions.

Sequential-region merging (paper Appendix D.3) replaces each region input
(``EVar`` leaf) of the following region with the equivalent expression from
the preceding region.  ``EBoundVar`` leaves are untouchable: they are bound
by an enclosing Loop/fold.
"""

from __future__ import annotations

from .nodes import (
    DagBuilder,
    EAttr,
    EBoundVar,
    EConst,
    EExists,
    EFold,
    ELoop,
    ENode,
    EOp,
    EQuery,
    EScalarQuery,
    EVar,
)


def substitute(node: ENode, mapping: dict[str, ENode], builder: DagBuilder) -> ENode:
    """Replace free ``EVar(name)`` leaves per ``mapping`` (memoized)."""
    memo: dict[int, ENode] = {}

    def visit(n: ENode) -> ENode:
        cached = memo.get(id(n))
        if cached is not None:
            return cached
        result = _visit_uncached(n)
        memo[id(n)] = result
        return result

    def _visit_uncached(n: ENode) -> ENode:
        if isinstance(n, EVar):
            return mapping.get(n.name, n)
        if isinstance(n, (EConst, EBoundVar)):
            return n
        if isinstance(n, EAttr):
            base = visit(n.base)
            if base is n.base:
                return n
            return builder.attr(base, n.attr)
        if isinstance(n, EOp):
            operands = tuple(visit(c) for c in n.operands)
            if operands == n.operands:
                return n
            return builder.intern(EOp(n.op, operands))
        if isinstance(n, EQuery):
            params = tuple((name, visit(value)) for name, value in n.params)
            if params == n.params:
                return n
            return builder.query(n.rel, params)
        if isinstance(n, EScalarQuery):
            params = tuple((name, visit(value)) for name, value in n.params)
            if params == n.params:
                return n
            return builder.scalar_query(n.rel, params)
        if isinstance(n, EExists):
            params = tuple((name, visit(value)) for name, value in n.params)
            if params == n.params:
                return n
            return builder.exists(n.rel, params, n.negated)
        if isinstance(n, ELoop):
            source = visit(n.source)
            body = visit(n.body)
            init = visit(n.init)
            if source is n.source and body is n.body and init is n.init:
                return n
            return builder.loop(
                source, body, init, n.var, n.cursor, n.updated, n.loop_sid, n.span
            )
        if isinstance(n, EFold):
            func = visit(n.func)
            init = visit(n.init)
            source = visit(n.source)
            if func is n.func and init is n.init and source is n.source:
                return n
            return builder.fold(
                func, init, source, n.var, n.cursor, n.loop_sid, n.span
            )
        raise TypeError(f"cannot substitute into {type(n).__name__}")

    return visit(node)


def bind_vars(node: ENode, names: set[str], builder: DagBuilder) -> ENode:
    """Convert free ``EVar(name)`` leaves into ``EBoundVar`` for ``names``.

    Used when packaging a loop body expression into a Loop/fold: the
    accumulator, the cursor, and every other loop-updated variable become
    bound (their values are iteration state, not region inputs).
    """
    mapping = {name: builder.bound(name) for name in names}
    return substitute(node, mapping, builder)


def unbind_var(node: ENode, name: str, replacement: ENode, builder: DagBuilder) -> ENode:
    """Replace ``EBoundVar(name)`` with an arbitrary expression (memoized).

    Used when applying fold semantics (e.g. rule T6 rewrites the accumulator
    occurrence, and SQL generation replaces the cursor variable with column
    references).
    """
    memo: dict[int, ENode] = {}

    def visit(n: ENode) -> ENode:
        cached = memo.get(id(n))
        if cached is not None:
            return cached
        result = _visit(n)
        memo[id(n)] = result
        return result

    def _visit(n: ENode) -> ENode:
        if isinstance(n, EBoundVar):
            return replacement if n.name == name else n
        if isinstance(n, (EConst, EVar)):
            return n
        if isinstance(n, EAttr):
            base = visit(n.base)
            return n if base is n.base else builder.attr(base, n.attr)
        if isinstance(n, EOp):
            operands = tuple(visit(c) for c in n.operands)
            return n if operands == n.operands else builder.intern(EOp(n.op, operands))
        if isinstance(n, EQuery):
            params = tuple((p, visit(v)) for p, v in n.params)
            return n if params == n.params else builder.query(n.rel, params)
        if isinstance(n, EScalarQuery):
            params = tuple((p, visit(v)) for p, v in n.params)
            return n if params == n.params else builder.scalar_query(n.rel, params)
        if isinstance(n, EExists):
            params = tuple((p, visit(v)) for p, v in n.params)
            return n if params == n.params else builder.exists(n.rel, params, n.negated)
        if isinstance(n, (ELoop, EFold)):
            # Do not descend past a binder for the same name.
            if name in (n.var, n.cursor):
                return n
            if isinstance(n, ELoop):
                return builder.loop(
                    visit(n.source),
                    visit(n.body),
                    visit(n.init),
                    n.var,
                    n.cursor,
                    n.updated,
                    n.loop_sid,
                    n.span,
                )
            return builder.fold(
                visit(n.func),
                visit(n.init),
                visit(n.source),
                n.var,
                n.cursor,
                n.loop_sid,
                n.span,
            )
        raise TypeError(f"cannot substitute into {type(n).__name__}")

    return visit(node)
