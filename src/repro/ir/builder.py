"""D-IR construction (paper Sections 3.2–3.3 and Appendix D).

For every region the builder produces a ve-Map: variable → equivalent
ee-DAG expression in terms of values at the start of the region (region
inputs, ``EVar``).  Construction is bottom-up:

* simple statement → a one-entry ve-Map (Appendix D.1)
* basic block → left-fold of sequential merges (D.2/D.3)
* conditional region → ``?`` nodes per modified variable (D.4)
* loop region → ``Loop`` nodes per updated variable (D.5)
* user functions/procedures → built separately and merged at the call
  site with actual-to-formal mapping (D.6)

Unsupported constructs make the affected variable's expression OPAQUE,
which later fails the F-IR preconditions for exactly that variable while
leaving other variables analysable (the paper's partial extraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra import Lit, bind_rel_params, query_params
from ..analysis import (
    DB_LOCATION,
    all_writes,
    BasicBlockRegion,
    ConditionalRegion,
    EmptyRegion,
    LoopRegion,
    OpaqueRegion,
    Region,
    SequentialRegion,
    build_region,
)
from ..interp.values import getter_to_column, setter_to_column
from ..lang import (
    Assign,
    Binary,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FieldAccess,
    FloatLit,
    ForEach,
    FunctionDef,
    IntLit,
    MethodCall,
    Name,
    New,
    NullLit,
    Program,
    Return,
    Stmt,
    StringLit,
    Ternary,
    Unary,
)
from ..sqlparse import SqlParseError, parse_query
from .nodes import (
    DagBuilder,
    EConst,
    ENode,
    EOp,
    EQuery,
    EVar,
    OPAQUE,
    free_vars,
)
from .subst import bind_vars, substitute

RET_VAR = "@ret"

_BINOP_MAP = {
    "&&": "and",
    "||": "or",
    "==": "==",
    "!=": "!=",
    "<": "<",
    ">": ">",
    "<=": "<=",
    ">=": ">=",
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "%",
}

#: String/collection methods with an ee-DAG operator (paper Section 3.2.1:
#: "equivalent ee-DAG operators were created for ... string operations ...
#: important library functions").
_METHOD_OPS = {
    "toUpperCase": "upper",
    "toLowerCase": "lower",
    "trim": "trim",
    "length": "length",
    "size": "size",
    "isEmpty": "isempty",
    "contains": "str_contains",
    "startsWith": "starts_with",
    "endsWith": "ends_with",
    "indexOf": "index_of",
    "substring": "substring",
    "concat": "+",
    "intValue": "identity",
    "doubleValue": "identity",
    "longValue": "identity",
}

_STATIC_RECEIVERS = {
    "Math",
    "Integer",
    "Double",
    "String",
    "System",
    "Collections",
    "Objects",
}

_MUTATORS_APPEND = {"add", "append", "addAll"}


@dataclass
class DIRContext:
    """Shared state for one D-IR construction pass."""

    program: Program
    dag: DagBuilder = field(default_factory=DagBuilder)
    max_inline_depth: int = 8
    #: loop_sid → the ForEach statement, for DDG checks and rewriting.
    loop_index: dict[int, ForEach] = field(default_factory=dict)
    #: Collection-kind hints (var name → "set" | "list" | "map"), gathered
    #: from `new HashSet()` etc. assignments anywhere in the function; used
    #: to pick append vs insert when the allocation is outside the region.
    var_kinds: dict[str, str] = field(default_factory=dict)
    _inline_stack: list[str] = field(default_factory=list)
    _function_cache: dict[str, dict[str, ENode]] = field(default_factory=dict)


class DIRBuilder:
    """Builds ve-Maps for regions of a preprocessed program."""

    def __init__(self, context: DIRContext):
        self.ctx = context
        self.dag = context.dag

    # ------------------------------------------------------------------
    # Entry points

    def build_function(self, name: str) -> dict[str, ENode]:
        """Return the function-level ve-Map (variables + ``@ret``)."""
        cached = self.ctx._function_cache.get(name)
        if cached is not None:
            return cached
        func = self.ctx.program.function(name)
        region = build_region(func.body)
        ve = self.build_region(region)
        self.ctx._function_cache[name] = ve
        return ve

    # ------------------------------------------------------------------
    # Regions (Appendix D)

    def build_region(self, region: Region) -> dict[str, ENode]:
        if isinstance(region, EmptyRegion):
            return {}
        if isinstance(region, BasicBlockRegion):
            return self._build_basic_block(region)
        if isinstance(region, SequentialRegion):
            first = self.build_region(region.first)
            second = self.build_region(region.second)
            return self.merge_sequential(first, second)
        if isinstance(region, ConditionalRegion):
            return self._build_conditional(region)
        if isinstance(region, LoopRegion):
            return self._build_loop(region)
        if isinstance(region, OpaqueRegion):
            return self._build_opaque(region)
        raise TypeError(f"cannot build D-IR for {type(region).__name__}")

    def merge_sequential(
        self, first: dict[str, ENode], second: dict[str, ENode]
    ) -> dict[str, ENode]:
        """Appendix D.3: resolve the second region's inputs from the first."""
        merged = dict(first)
        for name, node in second.items():
            merged[name] = substitute(node, first, self.dag)
        return merged

    def _build_basic_block(self, region: BasicBlockRegion) -> dict[str, ENode]:
        ve: dict[str, ENode] = {}
        for stmt in region.stmts:
            self._apply_statement(stmt, ve)
        return ve

    def _build_conditional(self, region: ConditionalRegion) -> dict[str, ENode]:
        cond = self._convert(region.cond, {})
        true_ve = self.build_region(region.true_region)
        false_ve = (
            self.build_region(region.false_region)
            if region.false_region is not None
            else {}
        )
        ve: dict[str, ENode] = {}
        for name in sorted(set(true_ve) | set(false_ve)):
            if_true = true_ve.get(name, self.dag.var(name))
            if_false = false_ve.get(name, self.dag.var(name))
            ve[name] = self.dag.op("?", cond, if_true, if_false)
        return ve

    def _build_loop(self, region: LoopRegion) -> dict[str, ENode]:
        if not region.is_cursor_loop:
            # General while loops have no algebraic representation.
            return self._opaque_writes(region.stmt)
        assert region.stmt is not None and isinstance(region.stmt, ForEach)
        cursor = region.cursor_var
        assert cursor is not None and region.iterable is not None
        if self._has_abnormal_control_flow(region.stmt):
            # `break`/`continue`/`try` inside the body changes which rows
            # contribute; the whole loop is unanalysable (paper Section 2:
            # "we assume that loops do not contain unconditional exit
            # statements").  Boolean early exits were already removed by
            # preprocessing.
            return self._opaque_writes(region.stmt)
        source = self._convert(region.iterable, {})
        body_ve = self.build_region(region.body)
        self.ctx.loop_index[region.stmt.sid] = region.stmt

        updated = tuple(sorted(name for name in body_ve if name != cursor))
        writes = all_writes(region.stmt)
        if DB_LOCATION in writes and DB_LOCATION not in updated:
            updated = tuple(sorted(updated + (DB_LOCATION,)))

        bound_names = set(updated) | {cursor}
        ve: dict[str, ENode] = {}
        for name in updated:
            if name == DB_LOCATION:
                ve[name] = OPAQUE
                continue
            body_expr = bind_vars(body_ve[name], bound_names, self.dag)
            ve[name] = self.dag.loop(
                source=source,
                body=body_expr,
                init=self.dag.var(name),
                var=name,
                cursor=cursor,
                updated=updated,
                loop_sid=region.stmt.sid,
                span=(region.stmt.line, region.stmt.col),
            )
        return ve

    @staticmethod
    def _has_abnormal_control_flow(stmt: ForEach) -> bool:
        from ..lang import Break, Continue, Return, TryCatch, walk_statements

        return any(
            isinstance(s, (Break, Continue, Return, TryCatch))
            for s in walk_statements(stmt.body)
        )

    def _build_opaque(self, region: OpaqueRegion) -> dict[str, ENode]:
        if region.stmt is None:
            return {}
        return self._opaque_writes(region.stmt)

    def _opaque_writes(self, stmt: Stmt | None) -> dict[str, ENode]:
        if stmt is None:
            return {}
        return {
            name: OPAQUE
            for name in all_writes(stmt)
            if name == DB_LOCATION or not name.startswith("@")
        }

    # ------------------------------------------------------------------
    # Statements (Appendix D.1)

    def _apply_statement(self, stmt: Stmt, ve: dict[str, ENode]) -> None:
        if isinstance(stmt, Assign):
            if isinstance(stmt.value, New):
                kind = _collection_kind(stmt.value.class_name)
                if kind is not None:
                    self.ctx.var_kinds[stmt.target] = kind
            ve[stmt.target] = self._convert(stmt.value, ve)
            return
        if isinstance(stmt, Return):
            value = (
                self._convert(stmt.value, ve)
                if stmt.value is not None
                else self.dag.const(None)
            )
            ve[RET_VAR] = value
            return
        if isinstance(stmt, ExprStmt):
            self._apply_expr_statement(stmt.expr, ve)
            return
        raise TypeError(f"unexpected simple statement {type(stmt).__name__}")

    def _apply_expr_statement(self, expr: Expr, ve: dict[str, ENode]) -> None:
        if isinstance(expr, MethodCall) and isinstance(expr.receiver, Name):
            receiver = expr.receiver.ident
            if receiver in _STATIC_RECEIVERS:
                return  # e.g. a bare Math.max(...) — no effect
            current = ve.get(receiver, self.dag.var(receiver))
            if expr.method in _MUTATORS_APPEND:
                is_set = (
                    self._is_set_valued(current)
                    or self.ctx.var_kinds.get(receiver) == "set"
                )
                op = "insert" if is_set else "append"
                args = [self._convert(a, ve) for a in expr.args]
                ve[receiver] = self.dag.op(op, current, *args)
                return
            if expr.method == "put":
                ve[receiver] = self.dag.op(
                    "map_put",
                    current,
                    self._convert(expr.args[0], ve),
                    self._convert(expr.args[1], ve),
                )
                return
            if expr.method in ("remove", "clear", "sort"):
                ve[receiver] = OPAQUE
                return
            if setter_to_column(expr.method):
                ve[receiver] = OPAQUE  # entity mutation is not modelled
                return
            return  # pure method call, result unused
        if isinstance(expr, Call):
            if expr.func in ("executeUpdate", "executeInsert", "executeDelete"):
                ve[DB_LOCATION] = OPAQUE
                return
            if expr.func in ("executeQuery", "executeQueryCursor"):
                return  # result discarded; a pure read
            self._inline_procedure_call(expr, ve)
            return
        # Any other expression statement is effect-free for our model.

    def _is_set_valued(self, node: ENode) -> bool:
        if isinstance(node, EOp):
            if node.op in ("empty_set", "insert"):
                return True
            if node.op == "?":
                return any(self._is_set_valued(c) for c in node.operands[1:])
        return False

    # ------------------------------------------------------------------
    # Function inlining (Appendix D.6)

    def _inline_procedure_call(self, expr: Call, ve: dict[str, ENode]) -> None:
        """Inline a user procedure call for its effects on globals."""
        callee_ve = self._callee_ve(expr.func)
        if callee_ve is None:
            return
        mapping = self._formal_mapping(expr, ve)
        if mapping is None:
            # Unresolvable call: conservatively poison the output stream.
            from .preprocess import OUT_VAR

            ve[OUT_VAR] = OPAQUE
            return
        from .preprocess import OUT_VAR

        for global_name in (OUT_VAR, DB_LOCATION):
            if global_name in callee_ve:
                node = substitute(callee_ve[global_name], mapping, self.dag)
                ve[global_name] = node

    def _inline_function_value(self, expr: Call, ve: dict[str, ENode]) -> ENode:
        """Inline a user function call in value position; OPAQUE on failure."""
        callee_ve = self._callee_ve(expr.func)
        if callee_ve is None or RET_VAR not in callee_ve:
            return OPAQUE
        mapping = self._formal_mapping(expr, ve)
        if mapping is None:
            return OPAQUE
        # Side effects on globals first.
        from .preprocess import OUT_VAR

        for global_name in (OUT_VAR, DB_LOCATION):
            if global_name in callee_ve:
                ve[global_name] = substitute(callee_ve[global_name], mapping, self.dag)
        return substitute(callee_ve[RET_VAR], mapping, self.dag)

    def _callee_ve(self, name: str) -> dict[str, ENode] | None:
        try:
            self.ctx.program.function(name)
        except KeyError:
            return None
        if name in self.ctx._inline_stack:
            return None  # recursion: give up
        if len(self.ctx._inline_stack) >= self.ctx.max_inline_depth:
            return None
        self.ctx._inline_stack.append(name)
        try:
            return self.build_function(name)
        finally:
            self.ctx._inline_stack.pop()

    def _formal_mapping(
        self, expr: Call, ve: dict[str, ENode]
    ) -> dict[str, ENode] | None:
        func = self.ctx.program.function(expr.func)
        if len(func.params) != len(expr.args):
            return None
        mapping = {
            formal: self._convert(arg, ve)
            for formal, arg in zip(func.params, expr.args)
        }
        from .preprocess import OUT_VAR

        mapping[OUT_VAR] = ve.get(OUT_VAR, self.dag.var(OUT_VAR))
        return mapping

    # ------------------------------------------------------------------
    # Expression conversion

    def _convert(self, expr: Expr, ve: dict[str, ENode]) -> ENode:
        if isinstance(expr, IntLit):
            return self.dag.const(expr.value)
        if isinstance(expr, FloatLit):
            return self.dag.const(expr.value)
        if isinstance(expr, StringLit):
            return self.dag.const(expr.value)
        if isinstance(expr, BoolLit):
            return self.dag.const(expr.value)
        if isinstance(expr, NullLit):
            return self.dag.const(None)
        if isinstance(expr, Name):
            return ve.get(expr.ident, self.dag.var(expr.ident))
        if isinstance(expr, Binary):
            op = _BINOP_MAP.get(expr.op)
            if op is None:
                return OPAQUE
            return self.dag.op(
                op, self._convert(expr.left, ve), self._convert(expr.right, ve)
            )
        if isinstance(expr, Unary):
            operand = self._convert(expr.operand, ve)
            if expr.op == "!":
                return self.dag.op("not", operand)
            if expr.op == "-":
                return self.dag.op("neg", operand)
            return OPAQUE
        if isinstance(expr, Ternary):
            return self.dag.op(
                "?",
                self._convert(expr.cond, ve),
                self._convert(expr.if_true, ve),
                self._convert(expr.if_false, ve),
            )
        if isinstance(expr, Call):
            return self._convert_call(expr, ve)
        if isinstance(expr, MethodCall):
            return self._convert_method(expr, ve)
        if isinstance(expr, FieldAccess):
            return self.dag.attr(self._convert(expr.receiver, ve), expr.field)
        if isinstance(expr, New):
            if expr.class_name in ("ArrayList", "LinkedList", "List", "Vector"):
                return self.dag.op("empty_list")
            if expr.class_name in ("HashSet", "TreeSet", "Set", "LinkedHashSet"):
                return self.dag.op("empty_set")
            if expr.class_name in ("HashMap", "TreeMap", "Map", "LinkedHashMap"):
                return self.dag.op("empty_map")
            if expr.class_name in ("Pair", "Tuple"):
                return self.dag.op(
                    "tuple", *[self._convert(a, ve) for a in expr.args]
                )
            return OPAQUE
        return OPAQUE

    def _convert_call(self, expr: Call, ve: dict[str, ENode]) -> ENode:
        if expr.func in ("executeQuery", "executeQueryCursor", "executeScalar", "executeExists"):
            if len(expr.args) != 1:
                return OPAQUE
            query = self._convert_query(self._convert(expr.args[0], ve), ve)
            if not isinstance(query, EQuery):
                return OPAQUE
            if expr.func == "executeScalar":
                return self.dag.scalar_query(query.rel, query.params)
            if expr.func == "executeExists":
                return self.dag.exists(query.rel, query.params)
            return query
        if expr.func in ("print", "println"):
            return OPAQUE  # should have been preprocessed away
        return self._inline_function_value(expr, ve)

    def _convert_method(self, expr: MethodCall, ve: dict[str, ENode]) -> ENode:
        if isinstance(expr.receiver, Name) and expr.receiver.ident in _STATIC_RECEIVERS:
            cls, method = expr.receiver.ident, expr.method
            args = [self._convert(a, ve) for a in expr.args]
            if cls == "Math" and method in ("max", "min"):
                return self.dag.op(method, *args)
            if cls == "Math" and method == "abs":
                return self.dag.op("abs", *args)
            if cls == "Integer" and method == "parseInt":
                return self.dag.op("to_int", *args)
            if cls == "Double" and method == "parseDouble":
                return self.dag.op("to_float", *args)
            return OPAQUE
        receiver = self._convert(expr.receiver, ve)
        method = expr.method
        if method in ("getString", "getInt", "getDouble", "getLong", "getBoolean", "getObject"):
            if len(expr.args) == 1 and isinstance(expr.args[0], StringLit):
                return self.dag.attr(receiver, expr.args[0].value)
            return OPAQUE
        # Library methods with ee-DAG operators take precedence over the
        # bean-getter convention (`isEmpty` is not a getter for `empty`).
        if method in _METHOD_OPS and len(expr.args) + 1 <= 3:
            mapped = _METHOD_OPS[method]
            if mapped == "identity":
                return receiver
            args = [self._convert(a, ve) for a in expr.args]
            return self.dag.op(mapped, receiver, *args)
        if method in ("getClass", "hashCode", "clone", "notify", "wait"):
            return OPAQUE  # java.lang.Object reflection — not modelled
        column = getter_to_column(method)
        if column is not None and not expr.args:
            return self.dag.attr(receiver, column)
        if method == "equals" and len(expr.args) == 1:
            return self.dag.op("==", receiver, self._convert(expr.args[0], ve))
        if method == "equalsIgnoreCase" and len(expr.args) == 1:
            return self.dag.op(
                "==",
                self.dag.op("lower", receiver),
                self.dag.op("lower", self._convert(expr.args[0], ve)),
            )
        if method == "compareTo":
            return OPAQUE  # custom comparator territory (paper limitation)
        mapped = _METHOD_OPS.get(method)
        if mapped is not None:
            args = [self._convert(a, ve) for a in expr.args]
            if mapped == "identity":
                return receiver
            return self.dag.op(mapped, receiver, *args)
        if method == "toString":
            return receiver
        return OPAQUE

    # ------------------------------------------------------------------
    # Query resolution

    def _convert_query(self, text_node: ENode, ve: dict[str, ENode]) -> ENode:
        """Resolve a query-string expression into an ``EQuery`` node.

        The string may be a constant or a concatenation embedding program
        expressions (``"... where id = " + id``); embedded expressions
        become query parameters, which is exactly the paper's resolution of
        query parameters to program inputs.
        """
        pieces = self._flatten_concat(text_node)
        if pieces is None:
            return OPAQUE
        text_parts: list[str] = []
        generated: dict[str, ENode] = {}
        for index, piece in enumerate(pieces):
            if isinstance(piece, EConst):
                if isinstance(piece.value, str):
                    text_parts.append(piece.value)
                else:
                    text_parts.append(str(piece.value))
            else:
                placeholder = f"__p{len(generated)}"
                generated[placeholder] = piece
                # `"... = '" + x + "'"` quotes a string value in source; the
                # placeholder replaces the quotes as well.
                if (
                    text_parts
                    and text_parts[-1].endswith("'")
                    and index + 1 < len(pieces)
                    and isinstance(pieces[index + 1], EConst)
                    and isinstance(pieces[index + 1].value, str)
                    and pieces[index + 1].value.startswith("'")
                ):
                    text_parts[-1] = text_parts[-1][:-1]
                    trailing = pieces[index + 1]
                    pieces[index + 1] = EConst(trailing.value[1:])
                text_parts.append(f":{placeholder}")
        text = "".join(text_parts)
        try:
            rel = parse_query(text)
        except SqlParseError:
            return OPAQUE
        bindings: list[tuple[str, ENode]] = []
        literal_bindings: dict[str, object] = {}
        for name in sorted(query_params(rel)):
            if name in generated:
                node = generated[name]
            else:
                node = ve.get(name, self.dag.var(name))
            if isinstance(node, EConst):
                literal_bindings[name] = node.value
            else:
                bindings.append((name, node))
        if literal_bindings:
            rel = bind_rel_params(
                rel, {k: Lit(v) for k, v in literal_bindings.items()}
            )
        return self.dag.query(rel, tuple(bindings))

    def _flatten_concat(self, node: ENode) -> list[ENode] | None:
        """Flatten a ``+`` chain into pieces; None when clearly not a string."""
        if isinstance(node, EOp) and node.op == "+" and len(node.operands) == 2:
            left = self._flatten_concat(node.operands[0])
            right = self._flatten_concat(node.operands[1])
            if left is None or right is None:
                return None
            return left + right
        if isinstance(node, EOp) and node.op == "opaque":
            return None
        return [node]


def _collection_kind(class_name: str) -> str | None:
    if class_name in ("HashSet", "TreeSet", "Set", "LinkedHashSet"):
        return "set"
    if class_name in ("ArrayList", "LinkedList", "List", "Vector"):
        return "list"
    if class_name in ("HashMap", "TreeMap", "Map", "LinkedHashMap"):
        return "map"
    return None


def build_dir(program: Program, function: str) -> tuple[dict[str, ENode], DIRContext]:
    """Convenience: build the D-IR ve-Map for one function of a preprocessed
    program.  Returns (ve-Map, context)."""
    context = DIRContext(program=program)
    builder = DIRBuilder(context)
    ve = builder.build_function(function)
    return ve, context
