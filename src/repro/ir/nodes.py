"""ee-DAG node kinds and the hash-consing DAG builder (Section 3.2.1).

Nodes are immutable and structurally hashable.  The :class:`DagBuilder`
interns nodes — "a composite id, comprising of ids of its operator and
operands, is assigned to each node, and a hash table is used for searching"
(paper Section 3.3) — so common sub-expressions are shared and equality
checks are pointer comparisons on canonical instances.

Node kinds:

``EConst``       a literal constant
``EVar``         a *region input* — the value of a variable at the start of
                 the region (the paper's ``x₀`` subscripted leaves)
``EBoundVar``    a variable bound by an enclosing Loop/fold (the running
                 accumulator value or the cursor tuple)
``EAttr``        attribute access on a tuple value (``t.p1``)
``EOp``          an operator applied to children (arithmetic, logical,
                 ``?``, ``max``, ``append``, ``insert``, ``tuple``...)
``EQuery``       a relation-valued database query (extended relational
                 algebra, possibly parameterized on program expressions)
``EScalarQuery`` a scalar-valued subquery (produced by rule T5)
``EExists``      EXISTS / NOT EXISTS over a query
``ELoop``        the paper's non-algebraic Loop operator
``EFold``        the F-IR fold operator (Section 4)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..algebra import RelExpr


class ENode:
    """Base class for all ee-DAG nodes."""

    def children(self) -> tuple["ENode", ...]:
        return ()


@dataclass(frozen=True, eq=False)
class EConst(ENode):
    value: Any

    def __eq__(self, other: object) -> bool:
        # Python's `1 == True` would merge int and bool constants under
        # hash-consing; distinguish by type as well as value.
        if not isinstance(other, EConst):
            return NotImplemented
        return type(self.value) is type(other.value) and self.value == other.value

    def __hash__(self) -> int:
        return hash((type(self.value).__name__, self.value))

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)


@dataclass(frozen=True)
class EVar(ENode):
    """A region input: the variable's value at the start of the region."""

    name: str

    def __str__(self) -> str:
        return f"{self.name}₀"


@dataclass(frozen=True)
class EBoundVar(ENode):
    """A variable bound by an enclosing Loop/fold."""

    name: str

    def __str__(self) -> str:
        return f"⟨{self.name}⟩"


@dataclass(frozen=True)
class EAttr(ENode):
    base: ENode
    attr: str

    def children(self) -> tuple[ENode, ...]:
        return (self.base,)

    def __str__(self) -> str:
        return f"{self.base}.{self.attr}"


@dataclass(frozen=True)
class EOp(ENode):
    op: str
    operands: tuple[ENode, ...] = ()

    def children(self) -> tuple[ENode, ...]:
        return self.operands

    def __str__(self) -> str:
        if self.op == "?":
            cond, if_true, if_false = self.operands
            return f"?[{cond}, {if_true}, {if_false}]"
        inner = ", ".join(str(c) for c in self.operands)
        return f"{self.op}[{inner}]"


#: Parameter bindings of a query node: (parameter name, bound expression).
ParamBindings = tuple[tuple[str, ENode], ...]


@dataclass(frozen=True)
class EQuery(ENode):
    """A relation-valued query; ``params`` bind :name placeholders."""

    rel: RelExpr
    params: ParamBindings = ()

    def children(self) -> tuple[ENode, ...]:
        return tuple(node for _, node in self.params)

    def __str__(self) -> str:
        if not self.params:
            return f"Q({self.rel})"
        bound = ", ".join(f":{n}={v}" for n, v in self.params)
        return f"Q({self.rel} | {bound})"


@dataclass(frozen=True)
class EScalarQuery(ENode):
    """A scalar-valued subquery (one row, one column)."""

    rel: RelExpr
    params: ParamBindings = ()

    def children(self) -> tuple[ENode, ...]:
        return tuple(node for _, node in self.params)

    def __str__(self) -> str:
        return f"scalar({self.rel})"


@dataclass(frozen=True)
class EExists(ENode):
    """EXISTS / NOT EXISTS over a query."""

    rel: RelExpr
    params: ParamBindings = ()
    negated: bool = False

    def children(self) -> tuple[ENode, ...]:
        return tuple(node for _, node in self.params)

    def __str__(self) -> str:
        name = "not-exists" if self.negated else "exists"
        return f"{name}({self.rel})"


@dataclass(frozen=True)
class ELoop(ENode):
    """The Loop operator (Section 3.2.1): non-algebraic cursor-loop value.

    ``body`` expresses one iteration's update of ``var`` in terms of
    ``EBoundVar(var)`` (value at iteration start) and ``EBoundVar(cursor)``
    (the current tuple).  ``init`` is the value flowing in from before the
    loop.  ``updated`` lists every variable the loop body updates (used by
    the F-IR preconditions), and ``loop_sid`` ties the node back to the
    source statement for DDG checks and rewriting.
    """

    source: ENode
    body: ENode
    init: ENode
    var: str
    cursor: str
    updated: tuple[str, ...] = ()
    loop_sid: int = -1
    #: (line, col) of the source loop statement.  Excluded from equality so
    #: interning still merges structurally-equal nodes; ``loop_sid`` (which
    #: does compare) already distinguishes distinct source loops.
    span: tuple[int, int] | None = field(default=None, compare=False)

    def children(self) -> tuple[ENode, ...]:
        return (self.source, self.body, self.init)

    def __str__(self) -> str:
        return f"Loop[{self.source}, λ⟨{self.var}⟩⟨{self.cursor}⟩.{self.body} | init={self.init}]"


@dataclass(frozen=True)
class EFold(ENode):
    """The F-IR fold operator (Section 4): ``fold [f, init, source]``.

    ``func`` is the folding function's body over ``EBoundVar(var)`` and
    ``EBoundVar(cursor)``.
    """

    func: ENode
    init: ENode
    source: ENode
    var: str
    cursor: str
    loop_sid: int = -1
    #: (line, col) of the originating loop statement (see :class:`ELoop`).
    span: tuple[int, int] | None = field(default=None, compare=False)

    def children(self) -> tuple[ENode, ...]:
        return (self.func, self.init, self.source)

    def __str__(self) -> str:
        return f"fold[λ⟨{self.var}⟩⟨{self.cursor}⟩.{self.func}, {self.init}, {self.source}]"


# ----------------------------------------------------------------------
# Hash caching.  Structural hashes recurse into children; on deep DAGs with
# heavy sharing that recursion is exponential in tree paths unless each
# node caches its hash (children's hashes are then O(1) lookups).


def _install_cached_hash(cls) -> None:
    generated = cls.__hash__

    def cached_hash(self) -> int:
        try:
            return object.__getattribute__(self, "_cached_hash")
        except AttributeError:
            value = generated(self)
            object.__setattr__(self, "_cached_hash", value)
            return value

    cls.__hash__ = cached_hash


for _cls in (
    EConst,
    EVar,
    EBoundVar,
    EAttr,
    EOp,
    EQuery,
    EScalarQuery,
    EExists,
    ELoop,
    EFold,
):
    _install_cached_hash(_cls)


#: The opaque node: a value the analysis cannot represent.  Any expression
#: containing it is rejected by the F-IR preconditions.
OPAQUE = EOp("opaque", ())

#: Empty-collection constants.
EMPTY_LIST = EOp("empty_list", ())
EMPTY_SET = EOp("empty_set", ())
EMPTY_MAP = EOp("empty_map", ())

TRUE = EConst(True)
FALSE = EConst(False)
NULL = EConst(None)
ZERO = EConst(0)


# ----------------------------------------------------------------------
# Traversal helpers


def walk_enodes(node: ENode):
    """Yield ``node`` and all descendants, pre-order (may repeat shared
    subtrees; use :func:`unique_enodes` for DAG-size iteration)."""
    yield node
    for child in node.children():
        yield from walk_enodes(child)


def unique_enodes(node: ENode) -> list[ENode]:
    """All distinct nodes reachable from ``node`` (DAG traversal)."""
    seen: dict[int, ENode] = {}
    order: list[ENode] = []

    def visit(n: ENode) -> None:
        if id(n) in seen:
            return
        seen[id(n)] = n
        for child in n.children():
            visit(child)
        order.append(n)

    visit(node)
    return order


def free_vars(node: ENode) -> set[str]:
    """Names of free region inputs (``EVar``) in an expression."""
    result: set[str] = set()
    for n in walk_enodes(node):
        if isinstance(n, EVar):
            result.add(n.name)
    return result


def bound_vars(node: ENode) -> set[str]:
    """Names of bound variables (``EBoundVar``) in an expression."""
    result: set[str] = set()
    for n in walk_enodes(node):
        if isinstance(n, EBoundVar):
            result.add(n.name)
    return result


def free_bound_vars(node: ENode) -> set[str]:
    """Bound-variable names *not* captured by a nested Loop/fold binder.

    Used by the F-IR preconditions: an inner loop's own accumulator and
    cursor are bound locally and must not count as loop-carried references
    at the enclosing level.
    """
    result: set[str] = set()

    def visit(n: ENode, shadowed: frozenset[str]) -> None:
        if isinstance(n, EBoundVar):
            if n.name not in shadowed:
                result.add(n.name)
            return
        if isinstance(n, (ELoop, EFold)):
            # The function/body is under the binder; init and source are
            # evaluated in the enclosing scope.  An inner loop accumulating
            # into an outer accumulator has init = ⟨outer var⟩, which must
            # count as a free reference at the enclosing level.
            inner = shadowed | {n.var, n.cursor}
            body = n.body if isinstance(n, ELoop) else n.func
            visit(body, inner)
            visit(n.init, shadowed)
            visit(n.source, shadowed)
            return
        for child in n.children():
            visit(child, shadowed)

    visit(node, frozenset())
    return result


def contains_opaque(node: ENode) -> bool:
    """True when the expression contains the OPAQUE marker."""
    return any(
        isinstance(n, EOp) and n.op == "opaque" for n in walk_enodes(node)
    )


def contains_fold(node: ENode) -> bool:
    return any(isinstance(n, EFold) for n in walk_enodes(node))


def contains_loop(node: ENode) -> bool:
    return any(isinstance(n, ELoop) for n in walk_enodes(node))


def dag_size(node: ENode) -> int:
    """Number of distinct nodes in the DAG rooted at ``node``."""
    return len(unique_enodes(node))


def tree_size(node: ENode) -> int:
    """Number of nodes counting shared subtrees once per occurrence.

    Computed by memoized dynamic programming — expression DAGs with heavy
    sharing have exponentially many tree paths, which must not be walked.
    """
    memo: dict[int, int] = {}

    def size(n: ENode) -> int:
        cached = memo.get(id(n))
        if cached is not None:
            return cached
        result = 1 + sum(size(c) for c in n.children())
        memo[id(n)] = result
        return result

    return size(node)


# ----------------------------------------------------------------------
# Hash-consing builder


class DagBuilder:
    """Interns ee-DAG nodes so equal expressions share one instance.

    Also applies the local canonicalisations the paper describes in
    Section 4.2: the ``if (expr OP v) v = expr`` structure becomes
    ``v = max/min(v, expr)``, and conditional boolean assignments become
    disjunctions/conjunctions (Appendix B, "checking for existence").
    """

    def __init__(self, enable_interning: bool = True):
        self._interned: dict[ENode, ENode] = {}
        self._enable = enable_interning
        self.hits = 0
        self.misses = 0

    def intern(self, node: ENode) -> ENode:
        if not self._enable:
            return node
        existing = self._interned.get(node)
        if existing is not None:
            self.hits += 1
            return existing
        self.misses += 1
        self._interned[node] = node
        return node

    @property
    def size(self) -> int:
        return len(self._interned)

    # ------------------------------------------------------------------
    # Constructors

    def const(self, value: Any) -> ENode:
        return self.intern(EConst(value))

    def var(self, name: str) -> ENode:
        return self.intern(EVar(name))

    def bound(self, name: str) -> ENode:
        return self.intern(EBoundVar(name))

    def attr(self, base: ENode, name: str) -> ENode:
        return self.intern(EAttr(base, name))

    def op(self, op: str, *operands: ENode) -> ENode:
        if op == "?":
            canonical = self._canonicalize_cond(*operands)
            if canonical is not None:
                return canonical
        return self.intern(EOp(op, tuple(operands)))

    def query(self, rel: RelExpr, params: ParamBindings = ()) -> ENode:
        return self.intern(EQuery(rel, params))

    def scalar_query(self, rel: RelExpr, params: ParamBindings = ()) -> ENode:
        return self.intern(EScalarQuery(rel, params))

    def exists(self, rel: RelExpr, params: ParamBindings = (), negated: bool = False) -> ENode:
        return self.intern(EExists(rel, params, negated))

    def loop(
        self,
        source: ENode,
        body: ENode,
        init: ENode,
        var: str,
        cursor: str,
        updated: tuple[str, ...] = (),
        loop_sid: int = -1,
        span: tuple[int, int] | None = None,
    ) -> ENode:
        return self.intern(
            ELoop(source, body, init, var, cursor, updated, loop_sid, span)
        )

    def fold(
        self,
        func: ENode,
        init: ENode,
        source: ENode,
        var: str,
        cursor: str,
        loop_sid: int = -1,
        span: tuple[int, int] | None = None,
    ) -> ENode:
        return self.intern(EFold(func, init, source, var, cursor, loop_sid, span))

    # ------------------------------------------------------------------
    # Canonicalisations (Section 4.2 / Appendix B)

    _MINMAX = {">": "max", ">=": "max", "<": "min", "<=": "min"}

    def _canonicalize_cond(self, *operands: ENode) -> ENode | None:
        if len(operands) != 3:
            return None
        cond, if_true, if_false = operands
        # `if (e OP v) v = e` → max/min(v, e)
        if isinstance(cond, EOp) and cond.op in self._MINMAX and len(cond.operands) == 2:
            left, right = cond.operands
            target = self._MINMAX[cond.op]
            if left == if_true and right == if_false:
                return self.op(target, if_false, if_true)
            # `v OP e` form: v = e when v OP e holds — inverted comparison.
            inverted = "min" if target == "max" else "max"
            if right == if_true and left == if_false:
                return self.op(inverted, if_false, if_true)
        # `if (p) v = true` → v ∨ p ; `if (p) v = false` → v ∧ ¬p
        if if_true == TRUE and isinstance(if_false, (EVar, EBoundVar)):
            return self.op("or", if_false, cond)
        if if_true == FALSE and isinstance(if_false, (EVar, EBoundVar)):
            return self.op("and", if_false, self.op("not", cond))
        # Mirrored: `if (p) {} else v = true/false`.
        if if_false == TRUE and isinstance(if_true, (EVar, EBoundVar)):
            return self.op("or", if_true, self.op("not", cond))
        if if_false == FALSE and isinstance(if_true, (EVar, EBoundVar)):
            return self.op("and", if_true, cond)
        return None
