"""``repro.api`` — the stable, import-one-thing facade.

Everything a client application, CI bot or editor integration needs lives
here under one flat namespace: the extraction entry points, the option
and report types, batch scanning, linting, rewrite planning, and the
language-frontend registry.  ``repro`` (the package root) re-exports the
same names; this module exists so tooling can depend on an explicit,
documented surface:

>>> from repro.api import ExtractOptions, extract_sql, get_frontend
>>> get_frontend("python").language
'Python (DB-API subset)'

Registering a new language frontend makes every entry point — programmatic
and CLI — accept it:

>>> from repro.api import register_frontend
>>> register_frontend(MyKotlinFrontend())        # doctest: +SKIP
>>> extract_sql(src, "f", catalog, options=ExtractOptions(frontend="kotlin"))  # doctest: +SKIP
"""

from .algebra import Catalog
from .batch import ScanReport, scan_directory
from .core import (
    DIALECTS,
    POLICIES,
    STATUS_CAPABLE,
    STATUS_FAILED,
    STATUS_SUCCESS,
    ExtractOptions,
    ExtractionReport,
    VariableExtraction,
    extract_sql,
    optimize_program,
)
from .frontends import (
    DEFAULT_FRONTEND,
    Frontend,
    FrontendError,
    available_frontends,
    detect_frontend,
    frontend_for_path,
    get_frontend,
    register_frontend,
)
from .lint import LintReport, lint_function, lint_program
from .lint.service import LintScanReport, lint_directory
from .rewrites import (
    DeploymentProfile,
    RewritePlan,
    get_profile,
    plan_rewrites,
    register_profile,
)

__all__ = [
    "Catalog",
    "DEFAULT_FRONTEND",
    "DIALECTS",
    "DeploymentProfile",
    "ExtractOptions",
    "ExtractionReport",
    "Frontend",
    "FrontendError",
    "LintReport",
    "LintScanReport",
    "POLICIES",
    "RewritePlan",
    "STATUS_CAPABLE",
    "STATUS_FAILED",
    "STATUS_SUCCESS",
    "ScanReport",
    "VariableExtraction",
    "available_frontends",
    "detect_frontend",
    "extract_sql",
    "frontend_for_path",
    "get_frontend",
    "lint_directory",
    "lint_function",
    "lint_program",
    "optimize_program",
    "plan_rewrites",
    "register_frontend",
    "register_profile",
    "scan_directory",
    "get_profile",
]
