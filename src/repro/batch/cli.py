"""The ``python -m repro scan`` subcommand.

Lives here (not in ``repro.__main__``) so the batch layer owns its whole
vertical; ``__main__`` just registers the parser.  Also provides
:func:`build_catalog`, the one place CLI schema arguments (``--schema``
JSON files and inline ``--table`` specs) become a :class:`Catalog` — the
``extract`` command reuses it.
"""

from __future__ import annotations

import json

from ..algebra import Catalog
from ..core import DIALECTS, ExtractOptions
from ..frontends import available_frontends
from .service import scan_directory


def build_catalog(schema: str | None, tables: list[str] | None) -> Catalog:
    """Build a catalog from CLI arguments; exits with a message on bad input."""
    catalog = Catalog()
    if schema:
        try:
            catalog = Catalog.from_json_file(schema)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc))
    for entry in tables or []:
        parts = entry.split(":")
        if len(parts) < 2:
            raise SystemExit(f"--table expects name:col1,col2[:keycol], got {entry!r}")
        name = parts[0]
        columns = parts[1].split(",")
        key = tuple(parts[2].split(",")) if len(parts) > 2 else ()
        try:
            catalog.add(Catalog.from_dict({name: {"columns": columns, "key": list(key)}}).get(name))
        except ValueError as exc:
            raise SystemExit(str(exc))
    if not catalog.tables:
        raise SystemExit("no schema given: use --schema FILE or --table name:cols[:key]")
    return catalog


def add_scan_parser(sub) -> None:
    """Register the ``scan`` subcommand on an argparse subparsers object."""
    scan = sub.add_parser(
        "scan",
        help="batch-extract SQL from every function under a directory",
    )
    scan.add_argument("directory", help="directory to scan for source files")
    scan.add_argument("--schema", help="JSON schema file")
    scan.add_argument(
        "--frontend",
        default=None,
        choices=list(available_frontends()),
        help="restrict the scan to one language frontend "
        "(default: auto-detect every registered frontend by file suffix)",
    )
    scan.add_argument(
        "--table", action="append", help="inline table: name:col1,col2[:keycol]"
    )
    scan.add_argument("--dialect", default="repro", choices=list(DIALECTS))
    scan.add_argument(
        "--unordered",
        action="store_true",
        help="result ordering irrelevant (keyword-search mode)",
    )
    scan.add_argument(
        "--temp-tables",
        action="store_true",
        help="allow shipping non-query collections as temporary tables",
    )
    scan.add_argument(
        "--profile",
        default=None,
        help="deployment profile for cost-based rewrite selection "
        "(built-ins: local, wan)",
    )
    scan.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default 1 = serial)",
    )
    scan.add_argument(
        "--cache-dir",
        default=None,
        help="result cache location (default: DIRECTORY/.repro-cache)",
    )
    scan.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    scan.add_argument("--json", action="store_true", help="emit the report as JSON")
    scan.add_argument(
        "-v", "--verbose", action="store_true", help="per-variable detail in text output"
    )
    scan.set_defaults(func=cmd_scan)


def cmd_scan(args) -> int:
    catalog = build_catalog(args.schema, args.table)
    try:
        options = ExtractOptions(
            dialect=args.dialect,
            ordering_matters=not args.unordered,
            allow_temp_tables=args.temp_tables,
            profile=args.profile,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    report = scan_directory(
        args.directory,
        catalog,
        options=options,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        frontend=args.frontend,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text(verbose=args.verbose))
    if not report.units and not report.parse_errors:
        print(f"no source files found under {args.directory}")
        return 1
    return 0
