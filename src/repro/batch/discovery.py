"""Source discovery: frontend-recognized files under a directory → work units.

A *work unit* is one (file, function) pair: the scan granularity, the
cache granularity, and the parallelism granularity are all the same thing.
Which files count as sources is decided by the frontend registry
(:mod:`repro.frontends`): every registered frontend contributes its file
suffixes, and each discovered file is parsed by the frontend its suffix
maps to.  Files that fail to parse produce no units; they are reported as
file-level errors instead of aborting the scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..frontends import (
    DEFAULT_FRONTEND,
    detect_frontend,
    get_frontend,
    source_suffixes,
)


def _suffixes(frontend: str | None) -> tuple[str, ...]:
    if frontend is None:
        return tuple(source_suffixes())
    return tuple(get_frontend(frontend).suffixes)


@dataclass(frozen=True)
class WorkUnit:
    """One (file, function) extraction task.

    ``path`` is relative to the scan root (POSIX-style), so reports and
    cache payloads are stable across machines and checkouts.
    ``frontend`` names the registered frontend that parsed the file and
    must parse it again wherever the unit is executed.
    """

    path: str
    function: str
    source: str
    frontend: str = DEFAULT_FRONTEND


@dataclass
class Discovery:
    """Everything found under a scan root."""

    root: str
    files: list[str] = field(default_factory=list)
    units: list[WorkUnit] = field(default_factory=list)
    #: path → parse error message, for files no units could be planned from.
    errors: dict[str, str] = field(default_factory=dict)


def discover_sources(root: Path | str, frontend: str | None = None) -> list[Path]:
    """All source files under ``root``, sorted for determinism.

    By default every suffix claimed by a registered frontend is included;
    ``frontend`` restricts discovery to that one frontend's suffixes.
    Hidden directories (``.git``, ``.repro-cache``, ...) are skipped.
    A file path may also be given directly.
    """
    root = Path(root)
    if root.is_file():
        return [root]
    suffixes = _suffixes(frontend)
    found = [
        path
        for path in root.rglob("*")
        if path.is_file()
        and path.suffix in suffixes
        and not any(part.startswith(".") for part in path.relative_to(root).parts)
    ]
    return sorted(found)


def plan_units(root: Path | str, frontend: str | None = None) -> Discovery:
    """Parse every discovered file and plan one unit per function.

    Each file is parsed by the frontend its suffix maps to (or by the
    forced ``frontend`` when given), and the frontend name is recorded on
    every unit.  Functions are planned in source order within a file;
    files in sorted path order — the unit list is therefore deterministic
    for a given tree.
    """
    root = Path(root)
    discovery = Discovery(root=str(root))
    for path in discover_sources(root, frontend):
        rel = (
            path.relative_to(root).as_posix() if not root.is_file() else path.name
        )
        discovery.files.append(rel)
        name = frontend if frontend is not None else detect_frontend(path)
        try:
            source = path.read_text()
            program = get_frontend(name).parse(source)
        except Exception as exc:  # parse/lex/io errors become per-file reports
            discovery.errors[rel] = f"{type(exc).__name__}: {exc}"
            continue
        for func in program.functions:
            discovery.units.append(
                WorkUnit(path=rel, function=func.name, source=source, frontend=name)
            )
    return discovery
