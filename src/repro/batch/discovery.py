"""Source discovery: MiniJava files under a directory → work units.

A *work unit* is one (file, function) pair: the scan granularity, the
cache granularity, and the parallelism granularity are all the same thing.
Files that fail to parse produce no units; they are reported as
file-level errors instead of aborting the scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..lang import parse_program

#: File suffixes treated as MiniJava sources.
SOURCE_SUFFIXES = (".mj", ".minijava")


@dataclass(frozen=True)
class WorkUnit:
    """One (file, function) extraction task.

    ``path`` is relative to the scan root (POSIX-style), so reports and
    cache payloads are stable across machines and checkouts.
    """

    path: str
    function: str
    source: str


@dataclass
class Discovery:
    """Everything found under a scan root."""

    root: str
    files: list[str] = field(default_factory=list)
    units: list[WorkUnit] = field(default_factory=list)
    #: path → parse error message, for files no units could be planned from.
    errors: dict[str, str] = field(default_factory=dict)


def discover_sources(root: Path | str) -> list[Path]:
    """All MiniJava source files under ``root``, sorted for determinism.

    Hidden directories (``.git``, ``.repro-cache``, ...) are skipped.
    A file path may also be given directly.
    """
    root = Path(root)
    if root.is_file():
        return [root]
    found = [
        path
        for path in root.rglob("*")
        if path.is_file()
        and path.suffix in SOURCE_SUFFIXES
        and not any(part.startswith(".") for part in path.relative_to(root).parts)
    ]
    return sorted(found)


def plan_units(root: Path | str) -> Discovery:
    """Parse every discovered file and plan one unit per function.

    Functions are planned in source order within a file; files in sorted
    path order — the unit list is therefore deterministic for a given tree.
    """
    root = Path(root)
    discovery = Discovery(root=str(root))
    for path in discover_sources(root):
        rel = (
            path.relative_to(root).as_posix() if not root.is_file() else path.name
        )
        discovery.files.append(rel)
        try:
            source = path.read_text()
            program = parse_program(source)
        except Exception as exc:  # parse/lex/io errors become per-file reports
            discovery.errors[rel] = f"{type(exc).__name__}: {exc}"
            continue
        for func in program.functions:
            discovery.units.append(
                WorkUnit(path=rel, function=func.name, source=source)
            )
    return discovery
