"""Content-addressed result cache.

The key is the SHA-256 of everything that determines a unit's result:
source text, function name, catalog spec, extraction options, and the
frontend that parses the source (plus a format version so stale entries
from older layouts self-invalidate).
Editing a file, the schema, or the options therefore changes the key —
warm re-scans skip extraction for everything else.

The store is plain JSON files under ``.repro-cache/``, sharded by the
first two hex digits of the key (``.repro-cache/ab/abcdef....json``), so
a human can inspect any entry and ``rm -rf`` is the only eviction tool
needed.  Writes are atomic (temp file + ``os.replace``), so concurrent
scans never observe half-written entries; corrupt or foreign files are
treated as misses and overwritten.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..algebra import Catalog
from ..core import ExtractOptions
from ..frontends import DEFAULT_FRONTEND

#: Bump when the cached payload layout changes; old entries become misses.
#: 2: the frontend name joined the key — identical source text means
#: different things to different language frontends, so it must never
#: collide across them.
#: 3: the SSA precision layer changed what extraction produces for the
#: same source (constant folding, dead-branch pruning, points-to-downgraded
#: blockers), so pre-precision entries must not be replayed.
CACHE_FORMAT = 3

#: Default cache directory name, created under the scan root.
CACHE_DIR_NAME = ".repro-cache"


def cache_key(
    source: str,
    function: str,
    catalog: Catalog,
    options: ExtractOptions,
    *,
    frontend: str = DEFAULT_FRONTEND,
) -> str:
    """SHA-256 over the canonical JSON of all result-determining inputs."""
    payload = json.dumps(
        {
            "format": CACHE_FORMAT,
            "source": source,
            "function": function,
            "catalog": catalog.to_dict(),
            "options": options.to_dict(),
            "frontend": frontend,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """JSON-file cache with hit/miss/store counters."""

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached result dict, or ``None`` (and a counted miss)."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != CACHE_FORMAT
            or "result" not in payload
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    def put(self, key: str, unit_path: str, function: str, result: dict) -> None:
        """Store one unit result atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "key": key,
            "file": unit_path,
            "function": function,
            "result": result,
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, path)
        self.stores += 1


class NullCache:
    """Cache-off stand-in: every lookup misses, stores are dropped."""

    directory = None

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def get(self, key: str) -> None:
        self.misses += 1
        return None

    def put(self, key: str, unit_path: str, function: str, result: dict) -> None:
        pass
