"""Scan aggregation: per-unit outcomes rolled up into a :class:`ScanReport`.

The report is dict/JSON-centric because it crosses process boundaries and
feeds both the text renderer and ``--json``.  Timing fields
(``duration_ms``, ``timings_ms``, ``utilisation``) vary run to run; all
other fields are deterministic for a given tree + schema + options, which
is what the ``-j N`` vs. serial equivalence tests key on (see
:func:`stable_view`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Per-unit keys that vary between runs and must be ignored when comparing
#: scans for equivalence (e.g. parallel vs. serial).
VOLATILE_UNIT_KEYS = ("duration_ms", "extraction_time_ms", "cached")


@dataclass
class ScanReport:
    """Aggregate outcome of one directory scan."""

    root: str
    units: list[dict] = field(default_factory=list)
    #: file → parse error, for sources no units could be planned from.
    parse_errors: dict[str, str] = field(default_factory=dict)
    files: list[str] = field(default_factory=list)
    jobs: int = 1
    cache_dir: str | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    #: phase → elapsed milliseconds: ``discover``, ``extract``, ``total``.
    timings_ms: dict[str, float] = field(default_factory=dict)

    def count(self, status: str) -> int:
        return sum(1 for unit in self.units if unit.get("status") == status)

    @property
    def successes(self) -> int:
        return self.count("success")

    @property
    def capable(self) -> int:
        return self.count("capable")

    @property
    def failures(self) -> int:
        return self.count("failed")

    def rewrite_choices(self) -> dict[str, int]:
        """Chosen-alternative kinds aggregated across all units' sites.

        Empty when the scan ran without a deployment profile.
        """
        counts: dict[str, int] = {}
        for unit in self.units:
            rewrites = unit.get("rewrites") or {}
            for site in rewrites.get("sites", []):
                chosen = site.get("chosen")
                if chosen:
                    counts[chosen] = counts.get(chosen, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def rewrite_profile(self) -> str | None:
        for unit in self.units:
            rewrites = unit.get("rewrites") or {}
            if rewrites.get("profile"):
                return rewrites["profile"]
        return None

    @property
    def extracted(self) -> int:
        """Units that actually ran the pipeline (i.e. were not cache hits)."""
        return sum(1 for unit in self.units if not unit.get("cached"))

    @property
    def utilisation(self) -> float:
        """Worker busy-time over available worker-time during extraction.

        1.0 means every worker computed for the whole extract phase; low
        values reveal pool overhead or skewed unit sizes.  0.0 when nothing
        was extracted (fully warm scan).
        """
        wall = self.timings_ms.get("extract", 0.0)
        if wall <= 0.0:
            return 0.0
        busy = sum(
            unit.get("duration_ms", 0.0)
            for unit in self.units
            if not unit.get("cached")
        )
        return min(1.0, busy / (wall * max(1, self.jobs)))

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "jobs": self.jobs,
            "files": list(self.files),
            "units": list(self.units),
            "parse_errors": dict(self.parse_errors),
            "counts": {
                "units": len(self.units),
                "success": self.successes,
                "capable": self.capable,
                "failed": self.failures,
                "parse_errors": len(self.parse_errors),
            },
            "cache": {
                "dir": self.cache_dir,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "stores": self.cache_stores,
            },
            "timings_ms": dict(self.timings_ms),
            "utilisation": self.utilisation,
            "rewrites": {
                "profile": self.rewrite_profile,
                "chosen": self.rewrite_choices(),
            },
        }

    def render_text(self, verbose: bool = False) -> str:
        """Human-readable summary (the default ``scan`` output)."""
        lines = [f"scan {self.root}"]
        lines.append(
            f"  files: {len(self.files)}  units: {len(self.units)}  "
            f"(success {self.successes}, capable {self.capable}, "
            f"failed {self.failures})"
        )
        if self.parse_errors:
            lines.append(f"  parse errors: {len(self.parse_errors)}")
            for path, error in sorted(self.parse_errors.items()):
                lines.append(f"    {path}: {error}")
        lines.append(
            f"  cache: {self.cache_hits} hit(s), {self.cache_misses} miss(es)"
            + (f"  [{self.cache_dir}]" if self.cache_dir else "  [disabled]")
        )
        choices = self.rewrite_choices()
        if choices:
            summary = ", ".join(f"{kind}×{n}" for kind, n in choices.items())
            lines.append(
                f"  rewrites (profile {self.rewrite_profile!r}): {summary}"
            )
        total = self.timings_ms.get("total", 0.0)
        extract = self.timings_ms.get("extract", 0.0)
        lines.append(
            f"  time: {total:.1f} ms total ({extract:.1f} ms extracting, "
            f"-j {self.jobs}, {self.utilisation:.0%} worker utilisation)"
        )
        for unit in self.units:
            status = unit.get("status", "?")
            cached = " (cached)" if unit.get("cached") else ""
            lines.append(f"  {unit.get('file')}::{unit.get('function')}: {status}{cached}")
            if verbose:
                for name, extraction in (unit.get("variables") or {}).items():
                    sql = extraction.get("sql")
                    detail = sql if sql else extraction.get("reason", "")
                    lines.append(f"      {name}: {extraction.get('status')}  {detail}")
            if unit.get("error"):
                lines.append(f"      error: {unit['error']}")
        return "\n".join(lines)


def stable_view(report: ScanReport) -> dict:
    """The deterministic projection of a report.

    Strips timing- and cache-dependent fields so two scans of the same tree
    (serial vs. parallel, cold vs. warm) compare equal exactly when their
    extraction outcomes are identical.
    """
    data = report.to_dict()
    data.pop("timings_ms", None)
    data.pop("utilisation", None)
    data.pop("cache", None)
    data.pop("jobs", None)
    units = []
    for unit in data["units"]:
        clean = {k: v for k, v in unit.items() if k not in VOLATILE_UNIT_KEYS}
        units.append(clean)
    data["units"] = units
    return data
