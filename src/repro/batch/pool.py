"""Work-unit execution: serial, or fanned out over a process pool.

Extraction is pure CPU (parsing, dataflow, rule rewriting), so threads
would serialize on the GIL; ``multiprocessing`` gives real scaling.  The
catalog and options are shipped once per worker through the pool
initializer rather than once per unit, and workers return plain dicts
(:meth:`ExtractionReport.to_dict`) so nothing AST-shaped crosses the
process boundary.

``pool.map`` preserves submission order, and each unit's result depends
only on its own (source, function, catalog, options) — a parallel scan is
bit-identical to a serial one apart from timing fields.
"""

from __future__ import annotations

import multiprocessing
import time

from ..algebra import Catalog
from ..core import ExtractOptions, extract_sql
from .discovery import WorkUnit

#: Per-worker process state, set once by :func:`_init_worker`.
_WORKER_STATE: dict = {}


def extract_unit(unit: WorkUnit, catalog: Catalog, options: ExtractOptions) -> dict:
    """Run extraction for one unit; never raises.

    Any crash inside the pipeline is converted into a ``failed`` result
    carrying the exception, so one pathological file cannot take down a
    repo-wide scan (or a worker process).
    """
    start = time.perf_counter()
    if options.frontend != unit.frontend:
        options = options.replace(frontend=unit.frontend)
    try:
        result = extract_sql(unit.source, unit.function, catalog, options=options).to_dict()
    except Exception as exc:
        result = {
            "function": unit.function,
            "status": "failed",
            "error": f"{type(exc).__name__}: {exc}",
            "variables": {},
            "rewritten_loops": [],
            "consolidations": [],
            "rewritten": None,
            "frontend": unit.frontend,
        }
    result["file"] = unit.path
    result["duration_ms"] = (time.perf_counter() - start) * 1000.0
    return result


def _init_worker(catalog: Catalog, options: ExtractOptions) -> None:
    _WORKER_STATE["catalog"] = catalog
    _WORKER_STATE["options"] = options


def _run_one(unit: WorkUnit) -> dict:
    return extract_unit(unit, _WORKER_STATE["catalog"], _WORKER_STATE["options"])


def run_units(
    units: list[WorkUnit],
    catalog: Catalog,
    options: ExtractOptions,
    jobs: int = 1,
) -> list[dict]:
    """Execute units and return their result dicts in submission order."""
    if jobs <= 1 or len(units) <= 1:
        return [extract_unit(unit, catalog, options) for unit in units]
    processes = min(jobs, len(units))
    with multiprocessing.Pool(
        processes=processes,
        initializer=_init_worker,
        initargs=(catalog, options),
    ) as pool:
        return pool.map(_run_one, units, chunksize=max(1, len(units) // (processes * 4)))
