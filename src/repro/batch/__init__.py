"""Batch extraction service: repo-wide scans with caching and parallelism.

The paper's pipeline analyses one function of one file per invocation;
real deployments run over entire applications.  This package adds the
throughput layer:

``discovery``  find MiniJava sources under a directory and plan one work
               unit per (file, function);
``cache``      persistent content-addressed result cache (key = SHA-256 of
               source + catalog spec + options; store = JSON files under
               ``.repro-cache/``);
``pool``       serial or ``multiprocessing`` execution of work units;
``report``     :class:`ScanReport` aggregation and rendering;
``service``    :func:`scan_directory`, the orchestrator gluing the above;
``cli``        the ``python -m repro scan`` subcommand.
"""

from .cache import NullCache, ResultCache, cache_key
from .discovery import Discovery, WorkUnit, discover_sources, plan_units
from .pool import extract_unit, run_units
from .report import ScanReport
from .service import scan_directory

__all__ = [
    "Discovery",
    "NullCache",
    "ResultCache",
    "ScanReport",
    "WorkUnit",
    "cache_key",
    "discover_sources",
    "extract_unit",
    "plan_units",
    "run_units",
    "scan_directory",
]
