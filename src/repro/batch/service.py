"""The scan orchestrator: discovery → cache probe → pool → report.

:func:`scan_directory` is the programmatic face of ``python -m repro scan``
and the substrate later scaling layers (sharding, async serving) build on.
Only cache *misses* reach the worker pool; results come back as plain
dicts and are stored immediately, so an interrupted scan still warms the
cache for everything it finished.
"""

from __future__ import annotations

import time
from pathlib import Path

from ..algebra import Catalog
from ..core import ExtractOptions
from .cache import CACHE_DIR_NAME, NullCache, ResultCache, cache_key
from .discovery import plan_units
from .pool import run_units
from .report import ScanReport


def scan_directory(
    root: Path | str,
    catalog: Catalog,
    options: ExtractOptions | None = None,
    jobs: int = 1,
    cache_dir: Path | str | None = None,
    use_cache: bool = True,
    frontend: str | None = None,
) -> ScanReport:
    """Scan ``root`` for source files and extract SQL from every function.

    Files are matched and parsed by the registered language frontends
    (suffix auto-detection); ``frontend`` restricts the scan to one
    frontend's files.  ``jobs > 1`` fans cache misses out over a
    ``multiprocessing`` pool.  The cache defaults to
    ``<root>/.repro-cache`` (``cache_dir`` overrides, ``use_cache=False``
    disables).  Unit order in the returned report is deterministic: files
    in sorted path order, functions in source order.
    """
    options = options if options is not None else ExtractOptions()
    start = time.perf_counter()
    discovery = plan_units(root, frontend)
    discover_ms = (time.perf_counter() - start) * 1000.0

    if not use_cache:
        cache: ResultCache | NullCache = NullCache()
    else:
        root_path = Path(root)
        base = root_path if root_path.is_dir() else root_path.parent
        cache = ResultCache(cache_dir if cache_dir is not None else base / CACHE_DIR_NAME)

    keys = [
        cache_key(unit.source, unit.function, catalog, options, frontend=unit.frontend)
        for unit in discovery.units
    ]
    results: list[dict | None] = []
    pending: list[int] = []
    for index, (unit, key) in enumerate(zip(discovery.units, keys)):
        hit = cache.get(key)
        if hit is not None:
            hit = dict(hit)
            hit["cached"] = True
            results.append(hit)
        else:
            results.append(None)
            pending.append(index)

    extract_start = time.perf_counter()
    fresh = run_units([discovery.units[i] for i in pending], catalog, options, jobs)
    extract_ms = (time.perf_counter() - extract_start) * 1000.0

    for index, result in zip(pending, fresh):
        unit = discovery.units[index]
        cache.put(keys[index], unit.path, unit.function, result)
        result = dict(result)
        result["cached"] = False
        results[index] = result

    return ScanReport(
        root=str(root),
        units=[r for r in results if r is not None],
        parse_errors=dict(discovery.errors),
        files=list(discovery.files),
        jobs=jobs,
        cache_dir=str(cache.directory) if cache.directory is not None else None,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        cache_stores=cache.stores,
        timings_ms={
            "discover": discover_ms,
            "extract": extract_ms,
            "total": (time.perf_counter() - start) * 1000.0,
        },
    )
