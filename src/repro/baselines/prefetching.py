"""Prefetching baseline — Ramachandra & Sudarshan [19] (Experiments 2, 8).

Prefetching submits queries asynchronously as soon as their parameters are
available, overlapping network round trips with computation.  It does not
reduce data transfer or the number of queries — only latency:

* queries whose parameters are available when the driving result arrives
  can all be in flight together (their round-trip latencies overlap);
* a query whose parameters flow through a *condition* on the driving data
  (Figure 12's Q5: ``applnMode == "online"``) cannot be chained and pays
  its round trip serially — the paper's stated limitation.
"""

from __future__ import annotations

from ..db import Connection, Database
from ..sqlparse import parse_query


def prefetch_applicable(source, function) -> bool:
    """Prefetching applies whenever the code executes any query at all
    (the paper: "prefetching is possible in all cases we examined")."""
    from ..analysis import DB_READ_CALLS
    from ..lang import Call, parse_program, statement_expressions, walk_expressions, walk_statements

    program = parse_program(source) if isinstance(source, str) else source
    func = program.function(function)
    for stmt in walk_statements(func.body):
        for expr in statement_expressions(stmt):
            for node in walk_expressions(expr):
                if isinstance(node, Call) and node.func in (
                    DB_READ_CALLS | {"executeScalar"}
                ):
                    return True
    return False


def run_prefetch_report(
    database: Database,
    connection: Connection,
    job_id: int,
    inner_queries: list[tuple[str, str, bool]],
) -> list:
    """Execute the Experiment 8 report with prefetching.

    All unconditional per-row queries are issued as one overlapped wave: the
    server and transfer costs accrue in full, but the round-trip latency is
    paid once for the wave instead of once per query.  Conditional queries
    cannot be prefetched and stay serial.
    """
    outer = connection.execute_query(
        parse_query("select * from applicants a where a.jobId = :j"), {"j": job_id}
    )

    output = []
    overlapped_queries = 0
    for row in outer:
        applicant = row["applicantId"]
        for table, column, conditional in inner_queries:
            query = parse_query(
                f"select {column} from {table} where applicantId = :a"
            )
            if conditional and row["applnMode"] != "online":
                continue
            before = connection.stats.simulated_time_ms
            rows = connection.execute_query(query, {"a": applicant})
            if not conditional:
                # The round trip overlapped with other in-flight prefetches:
                # refund its latency (it is charged once for the whole wave
                # below).
                connection.stats.simulated_time_ms -= connection.cost.round_trip_ms
                overlapped_queries += 1
            output.append(rows[0][column] if rows else None)
    if overlapped_queries:
        connection.stats.simulated_time_ms += connection.cost.round_trip_ms
    return output
