"""Batching baseline — Guravannavar & Sudarshan [11] (Experiments 2 and 8).

Batching rewrites *parameterized iterative query invocation*: a loop that
executes a parameterized query per iteration is split so the parameters are
collected into a temporary parameter table and the query runs once as a
batched join.  Two pieces are reproduced here:

* :func:`batching_applicable` — the applicability test of Experiment 2
  (7/33 Wilos samples);
* :func:`run_batched_report` — the executable strategy for the Experiment 8
  star-schema report: one round trip to ship each parameter table plus one
  batched join per inner query.  The paper notes "benefit due to batching
  is limited because of the overhead of creating four parameter tables" —
  that overhead is modelled as the parameter-table round trips and inserts.
"""

from __future__ import annotations

from ..analysis import DB_READ_CALLS, DB_WRITE_CALLS
from ..db import Connection, Database, row_size_bytes
from ..lang import (
    Call,
    ForEach,
    Program,
    parse_program,
    walk_expressions,
    walk_statements,
    statement_expressions,
)
from ..sqlparse import parse_query


def batching_applicable(source: str | Program, function: str) -> bool:
    """True when the function contains a cursor loop that issues a
    (parameterized) query per iteration — the batching precondition."""
    program = parse_program(source) if isinstance(source, str) else source
    func = program.function(function)
    for stmt in walk_statements(func.body):
        if not isinstance(stmt, ForEach):
            continue
        for inner in walk_statements(stmt.body):
            for expr in statement_expressions(inner):
                for node in walk_expressions(expr):
                    # Reads and writes both batch (parameter-table rewrite).
                    if isinstance(node, Call) and node.func in (
                        DB_READ_CALLS | DB_WRITE_CALLS | {"executeScalar"}
                    ):
                        return True
    return False


def run_batched_report(
    database: Database,
    connection: Connection,
    job_id: int,
    inner_queries: list[tuple[str, str, bool]],
) -> list:
    """Execute the Experiment 8 report with batching.

    ``inner_queries`` lists (table, value column, conditional?) for each
    per-row scalar query of the original program.  The strategy:

    1. one query for the driving result (applicants of the job);
    2. per inner query: one round trip shipping the parameter table
       (applicant ids) plus one batched join query returning all values.

    Returns the printed output in original order.
    """
    outer = connection.execute_query(
        parse_query("select * from applicants a where a.jobId = :j"), {"j": job_id}
    )
    ids = [row["applicantId"] for row in outer]

    # Parameter-table overhead: one round trip and the ids' bytes per inner
    # query (the paper's "overhead of creating four parameter tables").
    lookups: list[dict] = []
    for table, column, _conditional in inner_queries:
        param_bytes = sum(row_size_bytes({"id": i}) for i in ids)
        connection.stats.round_trips += 1
        connection.stats.queries_executed += 1
        connection.stats.bytes_transferred += param_bytes
        connection.stats.simulated_time_ms += (
            connection.cost.round_trip_ms
            + connection.cost.per_query_overhead_ms
            + param_bytes / connection.cost.bytes_per_ms
            + len(ids) * connection.cost.per_scanned_row_ms
        )
        rows = connection.execute_query(
            parse_query(
                f"select {table}.applicantId as pid, {table}.{column} as val "
                f"from {table}"
            )
        )
        lookups.append({row["pid"]: row["val"] for row in rows})

    output = []
    for row in outer:
        applicant = row["applicantId"]
        for (table, column, conditional), table_lookup in zip(inner_queries, lookups):
            if conditional and row["applnMode"] != "online":
                continue
            output.append(table_lookup.get(applicant))
    return output
