"""Comparison baselines: batching [11], prefetching [19], QBS [4]."""

from .batching import batching_applicable, run_batched_report
from .prefetching import prefetch_applicable, run_prefetch_report
from .qbs_reference import (
    EQSQL_MACHINE,
    QBS_MACHINE,
    QBS_RESULTS,
    QbsResult,
    eqsql_only_successes,
    qbs_success_count,
    qbs_total_time_s,
)

__all__ = [
    "EQSQL_MACHINE",
    "QBS_MACHINE",
    "QBS_RESULTS",
    "QbsResult",
    "batching_applicable",
    "eqsql_only_successes",
    "prefetch_applicable",
    "qbs_success_count",
    "qbs_total_time_s",
    "run_batched_report",
    "run_prefetch_report",
]
