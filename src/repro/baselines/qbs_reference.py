"""QBS reference data — Cheung et al. [4] (Experiments 1 and 4).

QBS is the program-synthesis comparator.  Its source is unavailable; the
paper itself compares against the *published* per-sample numbers ("the
numbers for QBS have been taken from [4]"), measured on a 128 GB / 32-core
machine, versus EqSQL's 8 GB / 8-core machine.  This module packages those
reference numbers for Table 1 and Experiment 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.wilos import WILOS_SAMPLES

#: The hardware the QBS numbers were measured on (Table 1 caption).
QBS_MACHINE = "128GB RAM, 32 cores"
#: The paper's EqSQL machine (Section 7).
EQSQL_MACHINE = "8GB RAM, Intel Core i7-3770 (8 cores)"


@dataclass(frozen=True)
class QbsResult:
    """QBS's published outcome for one Table 1 sample."""

    sample: int
    time_s: float | None  # None = QBS failed ("–")

    @property
    def succeeded(self) -> bool:
        return self.time_s is not None


QBS_RESULTS: dict[int, QbsResult] = {
    s.number: QbsResult(sample=s.number, time_s=s.qbs_time_s) for s in WILOS_SAMPLES
}


def qbs_success_count() -> int:
    """QBS extracts 21/33 Wilos samples (Table 1)."""
    return sum(1 for r in QBS_RESULTS.values() if r.succeeded)


def qbs_total_time_s() -> float:
    """Total published QBS synthesis time over its successful samples."""
    return sum(r.time_s for r in QBS_RESULTS.values() if r.time_s is not None)


def eqsql_only_successes(extraction_status: dict[int, str]) -> list[int]:
    """Samples EqSQL handles but QBS does not (the paper reports 6)."""
    return sorted(
        number
        for number, status in extraction_status.items()
        if status == "success" and not QBS_RESULTS[number].succeeded
    )
