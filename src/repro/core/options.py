"""Extraction options: one frozen value object instead of kwarg sprawl.

:class:`ExtractOptions` consolidates the knobs that used to be loose
keyword arguments on :func:`~repro.core.extract_sql` and
:func:`~repro.core.optimize_program` (``dialect``, ``policy``,
``ordering_matters``, ``allow_temp_tables``).  Being frozen and
dict-convertible makes it safe to hash into cache keys and to ship across
process boundaries, which the batch scanner (:mod:`repro.batch`) relies on.

The legacy keyword arguments still work but are deprecated; passing both
``options=`` and a legacy keyword is an error (there is no sensible merge
order).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace

DIALECTS = ("repro", "postgres", "mysql", "sqlserver", "ansi")
POLICIES = ("heuristic", "cost")

#: Sentinel distinguishing "kwarg not passed" from an explicit value, so the
#: deprecation path only fires when a caller actually uses a legacy kwarg.
UNSET = object()


@dataclass(frozen=True)
class ExtractOptions:
    """Options controlling extraction and rewriting.

    ``dialect``            target SQL dialect for rendered queries;
    ``policy``             loop-selection policy for rewriting (Section 5.3
                           heuristic or the Appendix C cost-based search) —
                           ignored by plain extraction;
    ``ordering_matters``   ``False`` enables the keyword-search relaxation
                           (Experiment 3): rule T4's unique-key precondition
                           is waived because result order is irrelevant;
    ``allow_temp_tables``  enables the Section 2 fallback of shipping
                           non-query collections as temporary tables;
    ``profile``            name of a deployment profile (see
                           :mod:`repro.rewrites`): when set, extraction also
                           generates the per-site rewrite space, costs it
                           under the profile and records the selected winner
                           on each :class:`~repro.core.VariableExtraction`;
    ``frontend``           name of the registered language frontend
                           (:mod:`repro.frontends`) that parses string
                           sources — ``"minijava"`` (the default, full
                           backward compatibility) or ``"python"``; ignored
                           when a pre-parsed :class:`~repro.lang.Program`
                           is passed;
    ``precision``          enables the SSA-based precision layer (constant
                           folding, dead-branch pruning, copy propagation
                           in preprocessing, plus points-to-verified lint
                           downgrades) — on by default; ``False`` restores
                           the purely syntactic pipeline.
    """

    dialect: str = "repro"
    policy: str = "heuristic"
    ordering_matters: bool = True
    allow_temp_tables: bool = False
    profile: str | None = None
    frontend: str = "minijava"
    precision: bool = True

    def __post_init__(self) -> None:
        # Function-level import: the registry lives beside the frontends
        # and must not load the whole pipeline just because options does.
        from ..frontends import get_frontend

        get_frontend(self.frontend)  # raises ValueError on unknown names
        if self.dialect not in DIALECTS:
            raise ValueError(
                f"unknown dialect {self.dialect!r}; expected one of {DIALECTS}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES}"
            )
        if self.profile is not None:
            # Function-level import: repro.rewrites pulls in layers that
            # must not load just because options does.
            from ..rewrites.profile import get_profile

            get_profile(self.profile)  # raises ValueError on unknown names

    def to_dict(self) -> dict:
        """A JSON-ready mapping; stable across processes and runs."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ExtractOptions":
        if not isinstance(data, dict):
            raise ValueError(f"options spec must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown option(s): {sorted(unknown)}")
        return cls(**data)

    def replace(self, **changes) -> "ExtractOptions":
        """A copy with the given fields changed (validation re-runs)."""
        return replace(self, **changes)


def resolve_options(
    options: ExtractOptions | None,
    *,
    api: str,
    dialect=UNSET,
    policy=UNSET,
    ordering_matters=UNSET,
    allow_temp_tables=UNSET,
) -> ExtractOptions:
    """Reconcile ``options=`` with the deprecated legacy keywords.

    Exactly one style may be used per call.  Legacy keywords build an
    equivalent :class:`ExtractOptions` and emit a :class:`DeprecationWarning`.
    """
    legacy = {
        name: value
        for name, value in (
            ("dialect", dialect),
            ("policy", policy),
            ("ordering_matters", ordering_matters),
            ("allow_temp_tables", allow_temp_tables),
        )
        if value is not UNSET
    }
    if options is not None:
        if legacy:
            raise TypeError(
                f"{api}() got options= together with legacy keyword(s) "
                f"{sorted(legacy)}; pass everything through options="
            )
        if not isinstance(options, ExtractOptions):
            raise TypeError(
                f"{api}() options= expects ExtractOptions, got {type(options).__name__}"
            )
        return options
    if legacy:
        warnings.warn(
            f"passing {sorted(legacy)} to {api}() is deprecated; "
            f"use options=ExtractOptions(...)",
            DeprecationWarning,
            stacklevel=3,
        )
        return ExtractOptions(**legacy)
    return ExtractOptions()
