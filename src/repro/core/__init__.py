"""EqSQL core: the end-to-end extraction and rewriting pipeline."""

from .extractor import (
    STATUS_CAPABLE,
    STATUS_FAILED,
    STATUS_SUCCESS,
    ExtractionReport,
    VariableExtraction,
    extract_sql,
    optimize_program,
)
from .options import DIALECTS, POLICIES, ExtractOptions

__all__ = [
    "DIALECTS",
    "ExtractOptions",
    "ExtractionReport",
    "POLICIES",
    "STATUS_CAPABLE",
    "STATUS_FAILED",
    "STATUS_SUCCESS",
    "VariableExtraction",
    "extract_sql",
    "optimize_program",
]
