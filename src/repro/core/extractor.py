"""EqSQL: the end-to-end extraction pipeline (paper Figure 1).

``extract_sql`` runs source → regions → D-IR → F-IR → rules → SQL and
classifies every analysed variable:

``success``  equivalent SQL was extracted;
``capable``  the techniques cover the construct but (like the paper's
             reference implementation) no SQL emitter exists for it — the
             Table 1 "✓" rows;
``failed``   a precondition was violated (the Table 1 "–" rows).

``optimize_program`` additionally rewrites the program to use the extracted
SQL, applying the paper's Section 5.3 heuristic: a loop is only rewritten
when every variable that is live after it was successfully extracted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..algebra import Catalog
from ..analysis import live_after_loop
from ..fir import (
    check_preconditions_ddg,
    loop_to_fold,
    try_dependent_aggregation,
)
from ..ir import (
    ELoop,
    ENode,
    EQuery,
    EVar,
    OUT_VAR,
    RET_VAR,
    build_dir,
    contains_fold,
    contains_loop,
    contains_opaque,
    preprocess_program,
    walk_enodes,
)
from ..frontends import get_frontend
from ..lang import Program
# Submodule imports (not ``..lint``) keep the import graph acyclic: the
# lint package's __init__ pulls in the batch layer, which imports core.
from ..lint.codes import code_info
from ..lint.diagnostics import Diagnostic, SourceSpan
from ..lint.engine import blockers_for, lint_preprocessed, loop_nesting
from ..rewrite import EmitError, Emitter, eliminate_dead_code, insert_extractions
from ..rules import RuleEngine
from ..sqlgen import SqlGenError, render_rel
from .options import UNSET, ExtractOptions, resolve_options

STATUS_SUCCESS = "success"
STATUS_CAPABLE = "capable"
STATUS_FAILED = "failed"


@dataclass
class VariableExtraction:
    """Outcome of extraction for one program variable."""

    variable: str
    status: str
    loop_sid: int = -1
    node: ENode | None = None
    sql: str | None = None
    #: ``reason`` is derived: the first diagnostic's message (kept as a
    #: plain field for backward compatibility with existing consumers).
    reason: str = ""
    rule_trace: list[str] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Cost-based rewrite selection for this variable's site (the
    #: serialized :class:`~repro.rewrites.SiteChoice`), populated when
    #: extraction ran with ``ExtractOptions(profile=...)``.
    rewrite: dict | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_SUCCESS

    def to_dict(self) -> dict:
        """A JSON-ready view (the internal F-IR node is omitted)."""
        return {
            "variable": self.variable,
            "status": self.status,
            "loop_sid": self.loop_sid,
            "sql": self.sql,
            "reason": self.reason,
            "rule_trace": list(self.rule_trace),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "rewrite": self.rewrite,
        }


@dataclass
class ExtractionReport:
    """Result of running EqSQL on one function."""

    function: str
    variables: dict[str, VariableExtraction]
    original: Program
    rewritten: Program | None = None
    extraction_time_ms: float = 0.0
    rewritten_loops: list[int] = field(default_factory=list)
    #: Figure 12→13 style consolidations: loops whose correlated scalar
    #: queries were merged into one OUTER APPLY query.
    consolidations: list = field(default_factory=list)
    #: Function-level lint findings (all severities), computed once per run.
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Name of the language frontend that parsed the source (see
    #: :mod:`repro.frontends`); rewritten programs render back through it.
    frontend: str = "minijava"
    #: Cost-based rewrite selection over the alternative space (a
    #: :class:`~repro.rewrites.RewritePlan`), when a profile was given.
    rewrite_plan = None

    @property
    def status(self) -> str:
        """Aggregate sample status, Table 1 style.

        No analysable variable at all (e.g. only non-cursor loops or opaque
        computations) counts as a failure.
        """
        states = [v.status for v in self.variables.values()]
        if states and all(s == STATUS_SUCCESS for s in states):
            return STATUS_SUCCESS
        if any(s == STATUS_CAPABLE for s in states):
            return STATUS_CAPABLE
        return STATUS_FAILED

    def extraction(self, variable: str) -> VariableExtraction:
        return self.variables[variable]

    def queries(self) -> list[str]:
        return [v.sql for v in self.variables.values() if v.sql]

    def to_dict(self) -> dict:
        """A JSON-ready view of the report.

        ASTs are rendered back to source (``rewritten``) rather than
        serialized structurally; the result round-trips through
        ``json.dumps``/``json.loads`` unchanged.  The rewritten program
        renders through the frontend that parsed the source, so a Python
        input yields Python output.
        """
        return {
            "function": self.function,
            "status": self.status,
            "frontend": self.frontend,
            "extraction_time_ms": self.extraction_time_ms,
            "variables": {
                name: extraction.to_dict()
                for name, extraction in self.variables.items()
            },
            "rewritten_loops": list(self.rewritten_loops),
            "consolidations": [
                {
                    "loop_sid": c.loop_sid,
                    "queries_merged": c.queries_merged,
                    "sql": c.sql,
                }
                for c in self.consolidations
            ],
            "rewritten": (
                get_frontend(self.frontend).unparse(self.rewritten)
                if self.rewritten is not None
                else None
            ),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "profile": (
                self.rewrite_plan.profile.name
                if self.rewrite_plan is not None
                else None
            ),
            "rewrites": (
                self.rewrite_plan.to_dict()
                if self.rewrite_plan is not None
                else None
            ),
        }


def extract_sql(
    source: str | Program,
    function: str,
    catalog: Catalog,
    targets: list[str] | None = None,
    dialect: str = UNSET,
    disabled_rules: frozenset[str] = frozenset(),
    ordering_matters: bool = UNSET,
    allow_temp_tables: bool = UNSET,
    custom_aggregates: dict | None = None,
    *,
    options: ExtractOptions | None = None,
) -> ExtractionReport:
    """Run the extraction pipeline without rewriting the program.

    Pass behavioural knobs through ``options=`` (an
    :class:`~repro.core.ExtractOptions`); the loose ``dialect``,
    ``ordering_matters`` and ``allow_temp_tables`` keywords remain as a
    deprecated compatibility path.

    ``ExtractOptions(ordering_matters=False)`` enables the keyword-search
    relaxation (Experiment 3): result order is irrelevant, so rule T4's
    unique-key precondition is waived.

    ``ExtractOptions(allow_temp_tables=True)`` enables the paper's Section 2
    fallback for loops over collections that are not query results: the
    collection is shipped to the database as a temporary table, which a
    query over it then replaces.  Off by default (the paper's implementation
    focuses on the query-derived case, and Table 1 sample 29 fails
    accordingly).
    """
    options = resolve_options(
        options,
        api="extract_sql",
        dialect=dialect,
        ordering_matters=ordering_matters,
        allow_temp_tables=allow_temp_tables,
    )
    start = time.perf_counter()
    raw_program = (
        get_frontend(options.frontend).parse(source)
        if isinstance(source, str)
        else source
    )
    program = preprocess_program(raw_program, precision=options.precision)
    ve, ctx = build_dir(program, function)

    if targets is None:
        targets = _default_targets(program, function, ve, ctx)

    # Soundness gate: run the lint passes once; EQ1xx findings forbid
    # extraction from the loops (or variables) they cover.  With precision
    # enabled, blockers the points-to analysis proves harmless arrive
    # downgraded below ERROR and no longer gate.
    lint_diags = lint_preprocessed(
        program, raw_program, function, precision=options.precision
    )
    nesting = loop_nesting(program.function(function))

    engine = RuleEngine(
        catalog,
        ctx.dag,
        disabled=disabled_rules,
        ordering_matters=options.ordering_matters,
        custom_aggregates=custom_aggregates,
    )
    variables: dict[str, VariableExtraction] = {}
    for target in targets:
        variables[target] = _extract_variable(
            target, ve, ctx, engine, program, function, options.dialect,
            allow_temp_tables=options.allow_temp_tables,
            lint_diags=lint_diags, nesting=nesting,
        )

    report = ExtractionReport(
        function=function,
        variables=variables,
        original=program,
        diagnostics=lint_diags,
        frontend=options.frontend,
    )
    if options.profile is not None:
        _attach_rewrite_plan(report, catalog, options)
    report.extraction_time_ms = (time.perf_counter() - start) * 1000.0
    return report


def _attach_rewrite_plan(report: ExtractionReport, catalog, options) -> None:
    """Cost-based selection over the site's rewrite space (Cobra).

    Generates every alternative, costs it under the named deployment
    profile and records the winner-with-justification on the report and on
    each variable of the site.
    """
    # Function-level import: repro.rewrites depends on the rewrite/analysis
    # layers but not on repro.core, which keeps the import graph acyclic.
    from ..rewrites import plan_rewrites

    plan = plan_rewrites(
        report, catalog, options.profile, dialect=options.dialect
    )
    report.rewrite_plan = plan
    for choice in plan.choices:
        serialized = choice.to_dict()
        for name in choice.site.variables:
            extraction = report.variables.get(name)
            if extraction is not None:
                extraction.rewrite = serialized


def optimize_program(
    source: str | Program,
    function: str,
    catalog: Catalog,
    targets: list[str] | None = None,
    dialect: str = UNSET,
    policy: str = UNSET,
    database=None,
    ordering_matters: bool = UNSET,
    allow_temp_tables: bool = UNSET,
    *,
    options: ExtractOptions | None = None,
) -> ExtractionReport:
    """Extract SQL and rewrite the program (Section 5.2).

    Behavioural knobs travel in ``options=`` (the loose keywords remain as
    a deprecated compatibility path).  ``options.policy`` selects how loops
    are chosen for rewriting:

    * ``"heuristic"`` — the Section 5.3 rule: rewrite a loop only when every
      variable live after it was successfully extracted;
    * ``"cost"`` — the Appendix C search: an AND-OR DAG over the loops,
      costed with :class:`~repro.cost.CostModel` (pass ``database`` for real
      cardinalities), may additionally decline heuristic-eligible loops
      whose extraction does not pay off.
    """
    options = resolve_options(
        options,
        api="optimize_program",
        dialect=dialect,
        policy=policy,
        ordering_matters=ordering_matters,
        allow_temp_tables=allow_temp_tables,
    )
    start = time.perf_counter()
    report = extract_sql(
        source,
        function,
        catalog,
        targets,
        options=options,
    )
    program = report.original
    func = program.function(function)

    by_loop: dict[int, list[VariableExtraction]] = {}
    for extraction in report.variables.values():
        if extraction.loop_sid >= 0:
            by_loop.setdefault(extraction.loop_sid, []).append(extraction)

    allowed_loops: set[int] | None = None
    if options.policy == "cost":
        from ..cost import cost_based_plan

        allowed_loops = cost_based_plan(report, database).rewrite_loops

    plan: dict[int, list[tuple[str, ENode]]] = {}
    loop_stmts = _loop_statements(program, function)
    for loop_sid, extractions in by_loop.items():
        loop_stmt = loop_stmts.get(loop_sid)
        if loop_stmt is None:
            continue
        if allowed_loops is not None and loop_sid not in allowed_loops:
            continue
        live = live_after_loop(func, loop_stmt)
        updated = {e.variable for e in extractions}
        # The printed-output stream is always observable.
        if OUT_VAR in updated:
            live = live | {OUT_VAR}
        needed = live & updated
        extracted_ok = {
            e.variable for e in extractions if e.ok and e.node is not None
        }
        if needed and needed <= extracted_ok:
            plan[loop_sid] = [
                (e.variable, e.node)
                for e in extractions
                if e.variable in needed and e.node is not None
            ]

    rewritten = program
    if plan:
        try:
            rewritten = insert_extractions(program, function, plan, options.dialect)
            rewritten = eliminate_dead_code(rewritten, function)
            report.rewritten_loops = sorted(plan)
        except EmitError:
            rewritten = program

    # Figure 12→13 consolidation for any loop that survived the rewrite.
    from ..rewrite import consolidate_loops

    rewritten, consolidations = consolidate_loops(
        rewritten, function, catalog, options.dialect
    )
    report.consolidations = consolidations

    if report.rewritten_loops or consolidations:
        report.rewritten = rewritten
    # The paper's Figure 7(b) timings cover the whole pipeline; replace the
    # extract-only elapsed time with one that includes rewriting, dead-code
    # elimination and consolidation.
    report.extraction_time_ms = (time.perf_counter() - start) * 1000.0
    return report


# ----------------------------------------------------------------------


def _default_targets(program, function, ve, ctx) -> list[str]:
    """Variables updated by cursor loops and observable afterwards."""
    func = program.function(function)
    targets: list[str] = []
    loop_stmts = _loop_statements(program, function)
    for name, node in ve.items():
        if name in (RET_VAR,) or name.startswith("@"):
            continue
        loops = [n for n in walk_enodes(node) if isinstance(n, ELoop) and n.var == name]
        if not loops:
            continue
        loop_stmt = loop_stmts.get(loops[0].loop_sid)
        if loop_stmt is None:
            continue
        live = live_after_loop(func, loop_stmt)
        if name in live or name == OUT_VAR:
            targets.append(name)
    return sorted(targets)


def _loop_statements(program, function):
    from ..lang import ForEach, walk_statements

    return {
        stmt.sid: stmt
        for stmt in walk_statements(program.function(function).body)
        if isinstance(stmt, ForEach)
    }


def _bail_diagnostic(
    code: str, span: SourceSpan, message: str, function: str, variable: str,
    loop_sid: int,
) -> Diagnostic:
    """A coded diagnostic for one extractor bail-out."""
    info = code_info(code)
    return Diagnostic(
        span=span,
        code=code,
        severity=info.severity,
        message=message,
        function=function,
        variable=variable,
        loop_sid=loop_sid,
        hint=info.hint,
    )


def _span_for(target, loop_sid, loop_stmts, func) -> SourceSpan:
    """Best source span for a bail-out: the loop statement, else the
    variable's last assignment, else the function header."""
    stmt = loop_stmts.get(loop_sid)
    if stmt is not None and stmt.line:
        return SourceSpan(stmt.line, stmt.col)
    from ..lang import Assign, walk_statements

    best = None
    for s in walk_statements(func.body):
        if isinstance(s, Assign) and s.target == target and s.line:
            best = s
    if best is not None:
        return SourceSpan(best.line, best.col)
    return SourceSpan(func.line, func.col)


def _extract_variable(
    target, ve, ctx, engine, program, function, dialect, allow_temp_tables=False,
    lint_diags=(), nesting=None,
) -> VariableExtraction:
    nesting = nesting if nesting is not None else {}
    func = program.function(function)
    loop_stmts = _loop_statements(program, function)

    def fail(code, reason, loop_sid, *, status=STATUS_FAILED, extra=None,
             trace=None, node_=None):
        diag = _bail_diagnostic(
            code, _span_for(target, loop_sid, loop_stmts, func), reason,
            function, target, loop_sid,
        )
        return VariableExtraction(
            variable=target,
            status=status,
            loop_sid=loop_sid,
            node=node_,
            reason=reason,
            rule_trace=trace or [],
            diagnostics=(extra or []) + [diag],
        )

    node = ve.get(target)
    if node is None:
        return fail("EQ206", "variable not assigned", -1)
    loop_sid = _primary_loop_sid(node, target)

    # Soundness gate: an EQ1xx finding covering this loop (or naming this
    # variable) forbids extraction regardless of what the translation
    # pipeline would make of it.
    blockers = blockers_for(list(lint_diags), nesting, loop_sid, target)
    if blockers:
        return VariableExtraction(
            variable=target,
            status=STATUS_FAILED,
            loop_sid=loop_sid,
            reason=blockers[0].message,
            diagnostics=list(blockers),
        )

    if contains_opaque(node):
        return fail(
            "EQ201",
            "unsupported construct in the variable's computation",
            loop_sid,
        )

    temp_table: tuple[str, str] | None = None
    if allow_temp_tables:
        node, temp_table = _substitute_temp_source(node, ctx)

    outcome = loop_to_fold(node, ctx.dag)
    if not outcome.ok:
        # Appendix B relaxation: dependent aggregation (argmax/argmin).
        relaxed = _try_argmax(node, ve, ctx)
        if relaxed is None:
            return fail(outcome.code or "EQ201", outcome.reason, loop_sid)
        fir_node = relaxed
    else:
        fir_node = outcome.node

    result, trace = engine.transform(fir_node)
    if contains_fold(result) or contains_loop(result):
        status = STATUS_CAPABLE if _capable_hits(trace, result) else STATUS_FAILED
        return fail(
            "EQ204",
            "transformation incomplete: fold remains",
            loop_sid,
            status=status,
            trace=trace,
        )

    sql = _sql_of(result, dialect)
    if sql is None:
        return fail(
            "EQ205",
            "F-IR extracted but no SQL emitter for some construct",
            loop_sid,
            status=STATUS_CAPABLE,
            trace=trace,
            node_=result,
        )
    if temp_table is not None:
        table_name, source_var = temp_table
        result = ctx.dag.op(
            "with_temp",
            result,
            ctx.dag.const(table_name),
            ctx.dag.var(source_var),
        )
    return VariableExtraction(
        variable=target,
        status=STATUS_SUCCESS,
        loop_sid=loop_sid,
        node=result,
        sql=sql,
        rule_trace=trace,
    )


def _substitute_temp_source(node: ENode, ctx) -> tuple[ENode, tuple[str, str] | None]:
    """Replace a Loop over a plain collection with a temp-table query.

    Paper Section 2's fallback: the collection's contents become a
    temporary table ``__temp_<var>`` at the database and the loop iterates
    ``SELECT * FROM __temp_<var>``.  Only the outermost Loop is handled.
    """
    from ..algebra import Table

    if not isinstance(node, ELoop) or not isinstance(node.source, EVar):
        return node, None
    source_var = node.source.name
    table_name = f"__temp_{source_var}"
    query = ctx.dag.query(Table(table_name))
    replaced = ctx.dag.loop(
        query, node.body, node.init, node.var, node.cursor, node.updated,
        node.loop_sid, node.span,
    )
    return replaced, (table_name, source_var)


def _primary_loop_sid(node: ENode, target: str) -> int:
    for n in walk_enodes(node):
        if isinstance(n, ELoop) and n.var == target:
            return n.loop_sid
    from ..ir import EFold

    for n in walk_enodes(node):
        if isinstance(n, (ELoop, EFold)):
            return n.loop_sid
    return -1


def _try_argmax(node: ENode, ve, ctx) -> ENode | None:
    if not isinstance(node, ELoop):
        return None
    siblings = {
        name: value
        for name, value in ve.items()
        if isinstance(value, ELoop) and value.loop_sid == node.loop_sid
    }
    return try_dependent_aggregation(node, siblings, ctx.dag)


def _capable_hits(trace, result) -> bool:
    """Classify an incomplete transformation as technique-capable.

    The reference implementation's gaps were operators with F-IR semantics
    but no SQL emitter (the Table 1 "✓" rows); a stuck fold whose function
    uses such an operator — and nothing opaque — is the same situation.
    """
    from ..fir import CAPABLE_UNIMPLEMENTED_OPS
    from ..ir import EFold, EOp

    for n in walk_enodes(result):
        if not isinstance(n, EFold):
            continue
        ops = {
            sub.op for sub in walk_enodes(n.func) if isinstance(sub, EOp)
        }
        if "opaque" in ops:
            continue
        if ops & CAPABLE_UNIMPLEMENTED_OPS:
            return True
    return False


def _sql_of(node: ENode, dialect: str) -> str | None:
    """Render the primary SQL for a fully-transformed result.

    For collection results this is the query itself; for scalar results the
    report shows the main embedded query (the rewritten program recombines
    it with initial values in source code, Section 5.2).
    """
    from ..ir import EExists, EScalarQuery

    try:
        if isinstance(node, EQuery):
            return render_rel(node.rel, dialect)
        queries = [
            n
            for n in walk_enodes(node)
            if isinstance(n, (EQuery, EScalarQuery, EExists))
        ]
        if not queries:
            return None
        rendered = [render_rel(q.rel, dialect) for q in queries]
        return rendered[0] if len(rendered) == 1 else "; ".join(rendered)
    except SqlGenError:
        return None
