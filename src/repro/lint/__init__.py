"""Soundness-precondition checker and coded diagnostics engine.

The lint layer answers two questions the extractor alone cannot:

* **Why not?** — every extraction bail-out becomes a stable, coded
  diagnostic (``EQ1xx`` soundness blockers, ``EQ2xx`` extraction-quality
  warnings, ``EQ3xx`` application anti-patterns) with a source span;
* **Is it safe?** — the ``EQ1xx`` passes run *before* translation and gate
  it: a loop carrying a blocker is never extracted, closing gaps where the
  D-IR builder would silently assume purity (unknown callees, aliased
  entities, re-consumed cursors).

See ``INTERNALS.md`` §11 for the pass architecture and the full code
table, and ``API.md`` for the public entry points.
"""

from .codes import BLOCKER_CODES, CODES, CodeInfo, code_info
from .diagnostics import Diagnostic, Severity, SourceSpan
from .engine import (
    LintReport,
    blockers_for,
    lint_function,
    lint_preprocessed,
    lint_program,
    loop_nesting,
)
from .registry import LintContext, lint_pass, registered_passes

# The directory-scanning layer reuses the batch cache, whose module imports
# repro.core — which imports this package for the extraction gate.  Loading
# the service symbols lazily keeps that import graph acyclic.
_SERVICE_EXPORTS = (
    "LintScanReport",
    "lint_cache_key",
    "lint_directory",
    "lint_unit",
)


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BLOCKER_CODES",
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "LintScanReport",
    "Severity",
    "SourceSpan",
    "blockers_for",
    "code_info",
    "lint_cache_key",
    "lint_directory",
    "lint_function",
    "lint_pass",
    "lint_preprocessed",
    "lint_program",
    "lint_unit",
    "loop_nesting",
    "registered_passes",
]
