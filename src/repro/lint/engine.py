"""The lint engine: run every pass over a program, gate extraction.

Entry points:

* :func:`lint_function` — findings for one function of a source text or
  parsed program;
* :func:`lint_program` — findings for every function, as a
  :class:`LintReport` with text/JSON rendering;
* :func:`lint_preprocessed` — the extractor's entry: it already holds both
  the raw and the preprocessed ASTs, so no re-parsing happens per call;
* :func:`loop_nesting` / :func:`blockers_for` — the soundness gate: which
  EQ1xx findings forbid extracting a given variable from a given loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import preprocess_program
from ..lang import ForEach, FunctionDef, Program, parse_program, walk_statements
from .diagnostics import Diagnostic, Severity
from .registry import make_context, run_passes

# Importing the passes module registers every pass.
from . import passes as _passes  # noqa: F401  (import for side effect)


def _as_program(source: str | Program) -> Program:
    return parse_program(source) if isinstance(source, str) else source


def lint_preprocessed(
    program: Program,
    raw_program: Program,
    function: str,
    *,
    precision: bool = True,
) -> list[Diagnostic]:
    """Run all passes for one function given both AST views (no parsing).

    ``precision`` must match the flag ``program`` was preprocessed with:
    it additionally enables points-to-verified blocker downgrades.
    """
    return run_passes(
        make_context(program, raw_program, function, precision=precision)
    )


def lint_function(
    source: str | Program, function: str, *, precision: bool = True
) -> list[Diagnostic]:
    """Parse/preprocess as needed and lint one function."""
    raw = _as_program(source)
    return lint_preprocessed(
        preprocess_program(raw, precision=precision),
        raw,
        function,
        precision=precision,
    )


@dataclass
class LintReport:
    """All findings for one program (or source file)."""

    functions: list[str] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def blockers(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_blocker]

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        result = {str(s): 0 for s in Severity}
        for diag in self.diagnostics:
            result[str(diag.severity)] += 1
        return result

    def to_dict(self) -> dict:
        return {
            "functions": list(self.functions),
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render_text(self, path: str = "") -> str:
        if not self.diagnostics:
            where = f"{path}: " if path else ""
            return f"{where}clean ({len(self.functions)} function(s) checked)"
        return "\n".join(d.render(path) for d in self.diagnostics)


def lint_program(source: str | Program, *, precision: bool = True) -> LintReport:
    """Lint every function of a program."""
    raw = _as_program(source)
    preprocessed = preprocess_program(raw, precision=precision)
    report = LintReport(functions=[f.name for f in raw.functions])
    for func in raw.functions:
        report.diagnostics.extend(
            lint_preprocessed(preprocessed, raw, func.name, precision=precision)
        )
    report.diagnostics.sort()
    return report


# ----------------------------------------------------------------------
# The extraction gate


def loop_nesting(func: FunctionDef) -> dict[int, frozenset[int]]:
    """Map each ``ForEach`` sid to the sids of all loops nested under it,
    itself included.  A blocker found in an inner loop also forbids
    extracting from any enclosing loop: the builder translates inner loops
    first, and their failure poisons the enclosing expression."""
    result: dict[int, frozenset[int]] = {}
    for stmt in walk_statements(func.body):
        if isinstance(stmt, ForEach):
            result[stmt.sid] = frozenset(
                inner.sid
                for inner in walk_statements(stmt)
                if isinstance(inner, ForEach)
            )
    return result


def blockers_for(
    diagnostics: list[Diagnostic],
    nesting: dict[int, frozenset[int]],
    loop_sid: int,
    variable: str,
) -> list[Diagnostic]:
    """EQ1xx findings that forbid extracting ``variable`` from ``loop_sid``.

    Loop-wide blockers (no ``variable``) apply to the loop and every loop
    nested under it; variable-scoped blockers apply only when they name the
    extraction target.
    """
    if loop_sid < 0:
        return []
    covered = nesting.get(loop_sid, frozenset({loop_sid}))
    hits = []
    for diag in diagnostics:
        if not diag.is_blocker or diag.loop_sid not in covered:
            continue
        if diag.variable and diag.variable != variable:
            continue
        hits.append(diag)
    return hits
