"""Directory-level linting: discovery → cache probe → pool → report.

Mirrors :func:`repro.batch.service.scan_directory` and reuses its
machinery: the same source discovery (:func:`repro.batch.discovery.plan_units`),
the same content-addressed JSON cache (keys carry a ``"kind": "lint"``
marker so lint and scan entries coexist in one ``.repro-cache``), and the
same serial-or-pool execution with order-preserving results.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..batch.cache import CACHE_DIR_NAME, CACHE_FORMAT, NullCache, ResultCache
from ..batch.discovery import WorkUnit, plan_units
from ..frontends import DEFAULT_FRONTEND, get_frontend
from .diagnostics import Severity
from .engine import lint_function

#: Bump when the lint payload layout changes; old entries become misses.
#: 2: the frontend name joined the key (see ``repro.batch.cache``).
#: 3: precision-layer downgrades changed diagnostic severities and the
#: preprocessed view diagnostics anchor to.
LINT_CACHE_FORMAT = 3


def lint_cache_key(
    source: str, function: str, *, frontend: str = DEFAULT_FRONTEND
) -> str:
    """SHA-256 over everything that determines a lint result."""
    payload = json.dumps(
        {
            "kind": "lint",
            "format": CACHE_FORMAT,
            "lint_format": LINT_CACHE_FORMAT,
            "source": source,
            "function": function,
            "frontend": frontend,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def lint_unit(unit: WorkUnit) -> dict:
    """Lint one (file, function) unit; never raises.

    The unit's frontend parses the source; the lint passes themselves run
    on the shared AST and are language-agnostic.
    """
    start = time.perf_counter()
    try:
        program = get_frontend(unit.frontend).parse(unit.source)
        diagnostics = [d.to_dict() for d in lint_function(program, unit.function)]
        result = {"function": unit.function, "diagnostics": diagnostics}
    except Exception as exc:
        result = {
            "function": unit.function,
            "diagnostics": [],
            "error": f"{type(exc).__name__}: {exc}",
        }
    result["file"] = unit.path
    result["frontend"] = unit.frontend
    result["duration_ms"] = (time.perf_counter() - start) * 1000.0
    return result


def _run_lint_units(units: list[WorkUnit], jobs: int) -> list[dict]:
    if jobs <= 1 or len(units) <= 1:
        return [lint_unit(unit) for unit in units]
    processes = min(jobs, len(units))
    with multiprocessing.Pool(processes=processes) as pool:
        return pool.map(
            lint_unit, units, chunksize=max(1, len(units) // (processes * 4))
        )


@dataclass
class LintScanReport:
    """Aggregate result of linting a directory."""

    root: str
    units: list[dict] = field(default_factory=list)
    parse_errors: dict[str, str] = field(default_factory=dict)
    files: list[str] = field(default_factory=list)
    jobs: int = 1
    cache_dir: str | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    timings_ms: dict[str, float] = field(default_factory=dict)

    def all_diagnostics(self) -> list[tuple[str, dict]]:
        """(file path, diagnostic dict) pairs in report order."""
        pairs = []
        for unit in self.units:
            for diag in unit.get("diagnostics", []):
                pairs.append((unit["file"], diag))
        return pairs

    def counts(self) -> dict[str, int]:
        result = {str(s): 0 for s in Severity}
        for _path, diag in self.all_diagnostics():
            result[diag["severity"]] = result.get(diag["severity"], 0) + 1
        return result

    @property
    def max_severity(self) -> Severity | None:
        severities = [
            Severity.parse(diag["severity"]) for _p, diag in self.all_diagnostics()
        ]
        return max(severities) if severities else None

    def exceeds(self, threshold: Severity | None) -> bool:
        """True when any finding is at or above ``threshold`` (None: never)."""
        if threshold is None:
            return False
        worst = self.max_severity
        return worst is not None and worst >= threshold

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "files": list(self.files),
            "jobs": self.jobs,
            "counts": self.counts(),
            "units": list(self.units),
            "parse_errors": dict(self.parse_errors),
            "cache": {
                "dir": self.cache_dir,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "stores": self.cache_stores,
            },
            "timings_ms": dict(self.timings_ms),
        }

    def render_text(self) -> str:
        lines = []
        for path, diag in self.all_diagnostics():
            span = diag.get("span", {})
            where = f"{path}:{span.get('line', 0)}:{span.get('col', 0)}"
            func = f" [{diag.get('function', '')}]" if diag.get("function") else ""
            lines.append(
                f"{where}: {diag['severity']} {diag['code']} {diag['message']}{func}"
            )
        for path, error in sorted(self.parse_errors.items()):
            lines.append(f"{path}: parse error: {error}")
        counts = self.counts()
        summary = ", ".join(
            f"{counts[str(s)]} {s}" for s in sorted(Severity, reverse=True)
        )
        lines.append(
            f"{len(self.units)} unit(s) in {len(self.files)} file(s): {summary}"
        )
        return "\n".join(lines)


def lint_directory(
    root: Path | str,
    jobs: int = 1,
    cache_dir: Path | str | None = None,
    use_cache: bool = True,
    frontend: str | None = None,
) -> LintScanReport:
    """Lint every function in every source file under ``root``.

    Files are matched and parsed by the registered language frontends
    (suffix auto-detection); ``frontend`` restricts the run to one
    frontend's files.
    """
    start = time.perf_counter()
    discovery = plan_units(root, frontend)
    discover_ms = (time.perf_counter() - start) * 1000.0

    if not use_cache:
        cache: ResultCache | NullCache = NullCache()
    else:
        root_path = Path(root)
        base = root_path if root_path.is_dir() else root_path.parent
        cache = ResultCache(
            cache_dir if cache_dir is not None else base / CACHE_DIR_NAME
        )

    keys = [
        lint_cache_key(unit.source, unit.function, frontend=unit.frontend)
        for unit in discovery.units
    ]
    results: list[dict | None] = []
    pending: list[int] = []
    for index, key in enumerate(keys):
        hit = cache.get(key)
        if hit is not None:
            hit = dict(hit)
            hit["cached"] = True
            results.append(hit)
        else:
            results.append(None)
            pending.append(index)

    lint_start = time.perf_counter()
    fresh = _run_lint_units([discovery.units[i] for i in pending], jobs)
    lint_ms = (time.perf_counter() - lint_start) * 1000.0

    for index, result in zip(pending, fresh):
        unit = discovery.units[index]
        cache.put(keys[index], unit.path, unit.function, result)
        result = dict(result)
        result["cached"] = False
        results[index] = result

    return LintScanReport(
        root=str(root),
        units=[r for r in results if r is not None],
        parse_errors=dict(discovery.errors),
        files=list(discovery.files),
        jobs=jobs,
        cache_dir=str(cache.directory) if cache.directory is not None else None,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        cache_stores=cache.stores,
        timings_ms={
            "discover": discover_ms,
            "lint": lint_ms,
            "total": (time.perf_counter() - start) * 1000.0,
        },
    )
