"""The registered lint passes.

Soundness passes (EQ1xx) run over the **preprocessed** function so their
findings line up with what the D-IR builder will see; each finding is
anchored to the nearest enclosing cursor loop (``loop_sid``).  The
extraction gate widens loop-scoped blockers to enclosing loops (see
:func:`repro.lint.engine.loop_nesting`), matching how the builder's loop
translation poisons outward.

Anti-pattern passes (EQ3xx) run over the function **as parsed**: cursor
normalisation erases the idioms they detect (``executeQueryCursor``
becomes ``executeQuery``, ``while (rs.next())`` becomes ``for``), and
their spans should point at the code the developer wrote.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..analysis import DB_READ_CALLS, DB_WRITE_CALLS
from ..analysis.effects import BUILTIN_CALLS
from ..interp.values import setter_to_column
from ..lang import (
    Assign,
    Binary,
    Block,
    BoolLit,
    Break,
    Call,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    ForEach,
    IntLit,
    MethodCall,
    Name,
    Return,
    Stmt,
    StringLit,
    TryCatch,
    While,
    child_statements,
    statement_expressions,
    walk_expressions,
    walk_statements,
)
from .diagnostics import Diagnostic, Severity
from .registry import LintContext, lint_pass


def _own_statements(loop: ForEach) -> Iterator[Stmt]:
    """Statements under ``loop`` whose *nearest* enclosing cursor loop is
    ``loop`` — the walk descends through ifs/whiles/try but stops at nested
    ``ForEach`` loops (they report their own findings)."""

    def visit(stmt: Stmt) -> Iterator[Stmt]:
        yield stmt
        if isinstance(stmt, ForEach):
            return
        for child in child_statements(stmt):
            yield from visit(child)

    for stmt in loop.body.statements:
        yield from visit(stmt)


def _own_calls(loop: ForEach) -> Iterator[tuple[Stmt, Expr]]:
    """(statement, call-expression) pairs directly owned by ``loop``."""
    for stmt in _own_statements(loop):
        for expr in statement_expressions(stmt):
            for node in walk_expressions(expr):
                if isinstance(node, (Call, MethodCall)):
                    yield stmt, node


# ----------------------------------------------------------------------
# EQ101 / EQ102 — side effects and purity of calls inside cursor loops


@lint_pass("loop-side-effects", codes=("EQ101", "EQ102"))
def check_loop_side_effects(ctx: LintContext) -> Iterable[Diagnostic]:
    """Database writes and un-inlinable calls inside cursor loops.

    A direct ``executeUpdate``-family call violates precondition P3.  A
    call to a user function is resolved through the transitive effect
    summaries: a callee that (transitively) writes the database is the same
    P3 violation one level removed; a callee the builder cannot inline
    (undefined, or recursive) would be silently treated as a no-op in
    statement position — the classic soundness gap this pass closes.
    """
    for loop in ctx.cursor_loops():
        for _stmt, node in _own_calls(loop):
            if not isinstance(node, Call):
                continue
            if node.func in DB_WRITE_CALLS:
                yield ctx.diag(
                    "EQ101",
                    node,
                    f"{node.func}(...) executes per row of the cursor",
                    loop_sid=loop.sid,
                )
            elif node.func in BUILTIN_CALLS:
                continue  # reads and prints are modelled soundly
            else:
                effect = ctx.effects.get(node.func)
                if effect is None:
                    yield ctx.diag(
                        "EQ102",
                        node,
                        f"{node.func!r} is not defined in this program",
                        loop_sid=loop.sid,
                    )
                elif effect.opaque:
                    why = "recursive" if effect.recursive else "calls unknown code"
                    yield ctx.diag(
                        "EQ102",
                        node,
                        f"{node.func!r} cannot be inlined ({why})",
                        loop_sid=loop.sid,
                    )
                elif effect.db_write:
                    yield ctx.diag(
                        "EQ101",
                        node,
                        f"{node.func!r} transitively writes the database",
                        loop_sid=loop.sid,
                    )


# ----------------------------------------------------------------------
# EQ103 — alias / escape analysis


@lint_pass("alias-escape", codes=("EQ103",))
def check_alias_escape(ctx: LintContext) -> Iterable[Diagnostic]:
    """Values escaping the extraction model.

    Two shapes:

    * an entity **setter** inside a cursor loop (``t.setX(...)``) — the
      builder marks only the receiver opaque, but the mutation may be
      visible through aliases; flagged as a variable-scoped blocker on the
      receiver;
    * the **iterated result set** passed as an argument to a function the
      analysis cannot prove leaves it intact (undefined callee, or a known
      callee that mutates that parameter) — flagged loop-wide, because a
      mutated source collection invalidates the fold entirely.

    When the precision layer is on, points-to / escape proofs *downgrade*
    findings whose soundness obligation is discharged to informational:

    * a setter receiver proven function-local (``is_function_local``) —
      nothing outside the function can observe the mutation;
    * a result set passed to a *defined* callee whose summary proves the
      argument position neither escapes nor is mutated
      (``escapes_params`` is sound even for opaque callees: anything
      reaching unknown code is in the set).

    A call site where the variable provably no longer denotes the
    iterated result set (rebound between loop and call) is skipped
    entirely.
    """
    loops = ctx.cursor_loops()

    for loop in loops:
        for stmt, node in _own_calls(loop):
            if (
                isinstance(node, MethodCall)
                and isinstance(stmt, ExprStmt)
                and setter_to_column(node.method) is not None
                and isinstance(node.receiver, Name)
            ):
                pt = ctx.pointsto
                if pt is not None and pt.is_function_local(
                    stmt.sid, node.receiver.ident
                ):
                    yield ctx.diag(
                        "EQ103",
                        node,
                        f"entity {node.receiver.ident!r} is mutated via "
                        f".{node.method}(...) inside the loop, but is "
                        "proven local to this function",
                        variable=node.receiver.ident,
                        loop_sid=loop.sid,
                        severity=Severity.INFO,
                    )
                else:
                    yield ctx.diag(
                        "EQ103",
                        node,
                        f"entity {node.receiver.ident!r} is mutated via "
                        f".{node.method}(...) inside the loop",
                        variable=node.receiver.ident,
                        loop_sid=loop.sid,
                    )

    # Result-set escape: scan the whole function for calls taking a loop's
    # iterable as an argument.
    iterables: dict[str, ForEach] = {}
    for loop in loops:
        if isinstance(loop.iterable, Name):
            iterables.setdefault(loop.iterable.ident, loop)
    if not iterables:
        return

    inside: dict[int, int] = {}  # id(call node) -> owning loop sid
    for loop in loops:
        for _stmt, node in _own_calls(loop):
            inside.setdefault(id(node), loop.sid)

    for stmt in walk_statements(ctx.func.body):
        for expr in statement_expressions(stmt):
            for node in walk_expressions(expr):
                if not isinstance(node, Call) or node.func in BUILTIN_CALLS:
                    continue
                effect = ctx.effects.get(node.func)
                for pos, arg in enumerate(node.args):
                    if not (isinstance(arg, Name) and arg.ident in iterables):
                        continue
                    loop = iterables[arg.ident]
                    pt = ctx.pointsto
                    if pt is not None:
                        loop_objs = pt.objects_at(loop.sid, arg.ident)
                        here_objs = pt.objects_at(stmt.sid, arg.ident)
                        if (
                            loop_objs
                            and here_objs
                            and not pt.may_alias(stmt.sid, arg.ident, loop_objs)
                        ):
                            continue  # rebound: not the iterated result set
                    if effect is None or effect.opaque:
                        # Inside its own loop the call is already an EQ102
                        # blocker; elsewhere the escape itself is the issue.
                        if inside.get(id(node)) == loop.sid:
                            continue
                        if (
                            ctx.precision
                            and effect is not None
                            and pos not in effect.escapes_params
                            and pos not in effect.mutates_params
                        ):
                            yield ctx.diag(
                                "EQ103",
                                node,
                                f"result set {arg.ident!r} is passed to "
                                f"{node.func!r}, which provably neither "
                                "retains nor mutates it",
                                loop_sid=loop.sid,
                                severity=Severity.INFO,
                            )
                        else:
                            yield ctx.diag(
                                "EQ103",
                                node,
                                f"result set {arg.ident!r} escapes to "
                                f"{node.func!r}, which cannot be analysed",
                                loop_sid=loop.sid,
                            )
                    elif pos in effect.mutates_params:
                        yield ctx.diag(
                            "EQ103",
                            node,
                            f"result set {arg.ident!r} may be mutated by "
                            f"{node.func!r}",
                            loop_sid=loop.sid,
                        )


# ----------------------------------------------------------------------
# EQ104 — double consumption of a forward-only cursor


@lint_pass("cursor-consumption", codes=("EQ104",))
def check_cursor_consumption(ctx: LintContext) -> Iterable[Diagnostic]:
    """A forward-only cursor iterated by more than one loop.

    Fires only for genuinely cursor-backed values: a variable defined by
    ``executeQueryCursor``, or the self-shadowing ``for (rs : rs)`` form
    that cursor-``while`` normalisation produces.  Materialised
    ``executeQuery`` results are plain collections — iterating those twice
    is sound and not flagged.
    """
    defs: dict[str, Expr] = {}
    for stmt in walk_statements(ctx.func.body):
        if isinstance(stmt, Assign) and stmt.target not in defs:
            defs[stmt.target] = stmt.value

    by_var: dict[str, list[ForEach]] = {}
    for loop in ctx.cursor_loops():
        if isinstance(loop.iterable, Name):
            by_var.setdefault(loop.iterable.ident, []).append(loop)

    for var, loops in by_var.items():
        if len(loops) < 2:
            continue
        defining = defs.get(var)
        cursorish = any(loop.var == var for loop in loops) or (
            isinstance(defining, Call) and defining.func == "executeQueryCursor"
        )
        if not cursorish:
            continue
        first = loops[0]
        for loop in loops[1:]:
            yield ctx.diag(
                "EQ104",
                loop,
                f"{var!r} was already exhausted by the loop at line "
                f"{first.line}",
                loop_sid=loop.sid,
            )


# ----------------------------------------------------------------------
# EQ105 / EQ106 — exception paths and early exits inside fold candidates


@lint_pass("loop-exit-safety", codes=("EQ105", "EQ106"))
def check_loop_exit_safety(ctx: LintContext) -> Iterable[Diagnostic]:
    """Abnormal control flow the fold model cannot express.

    Mirrors the builder's abnormal-control-flow test: any ``break``,
    ``continue``, or ``return`` surviving preprocessing (boolean early
    exits are normalised away before this pass runs), and any try/catch,
    make the iteration count observable and the fold translation unsound.
    """
    names = {Break: "break", Continue: "continue", Return: "return"}
    for loop in ctx.cursor_loops():
        for stmt in _own_statements(loop):
            if isinstance(stmt, (Break, Continue, Return)):
                yield ctx.diag(
                    "EQ105",
                    stmt,
                    f"'{names[type(stmt)]}' exits the loop mid-iteration",
                    loop_sid=loop.sid,
                )
            elif isinstance(stmt, TryCatch):
                yield ctx.diag("EQ106", stmt, loop_sid=loop.sid)


# ----------------------------------------------------------------------
# EQ301 — N+1 query-in-loop


@lint_pass("n-plus-one", codes=("EQ301",))
def check_query_in_loop(ctx: LintContext) -> Iterable[Diagnostic]:
    """Database reads executed per iteration of any loop (raw AST).

    Loop headers are exempt — ``for (t : executeQuery(...))`` evaluates its
    iterable once — but a read in the header of a loop that is itself
    nested inside another loop does fire.
    """
    diags: list[Diagnostic] = []

    def visit(block: Block, in_loop: bool) -> None:
        for stmt in block.statements:
            if in_loop:
                for expr in statement_expressions(stmt):
                    for node in walk_expressions(expr):
                        if isinstance(node, Call) and node.func in DB_READ_CALLS:
                            diags.append(
                                ctx.diag(
                                    "EQ301",
                                    node,
                                    f"{node.func}(...) runs once per "
                                    "iteration of the enclosing loop",
                                )
                            )
            inner = in_loop or isinstance(stmt, (ForEach, While))
            for child in child_statements(stmt):
                if isinstance(child, Block):
                    visit(child, inner)

    visit(ctx.raw_func.body, in_loop=False)
    return diags


# ----------------------------------------------------------------------
# EQ302 — SQL built by string concatenation


_LITERALS = (StringLit, IntLit, FloatLit, BoolLit)


def _concat_parts(expr: Expr) -> list[Expr]:
    if isinstance(expr, Binary) and expr.op == "+":
        return _concat_parts(expr.left) + _concat_parts(expr.right)
    return [expr]


@lint_pass("sql-concat", codes=("EQ302",))
def check_sql_concatenation(ctx: LintContext) -> Iterable[Diagnostic]:
    """SQL text concatenated from non-literal parts (raw AST).

    A taint walk over the function's assignments, mirroring the value map
    the D-IR builder computes: a variable is tainted when its value is a
    ``+`` chain mixing string literals with non-literal parts (the builder
    turns each such part into a synthesised ``__pN`` query parameter), or a
    copy of a tainted variable.  A database call whose SQL argument is
    tainted — or is such a chain directly — is flagged.
    """
    tainted: set[str] = set()
    stringish: set[str] = set()
    assigns = [
        stmt
        for stmt in walk_statements(ctx.raw_func.body)
        if isinstance(stmt, Assign)
    ]
    for stmt in assigns:
        if isinstance(stmt.value, StringLit):
            stringish.add(stmt.target)

    def chain_taints(parts: list[Expr]) -> bool:
        has_string = any(
            isinstance(p, StringLit)
            or (isinstance(p, Name) and p.ident in (stringish | tainted))
            for p in parts
        )
        non_literal = any(not isinstance(p, _LITERALS) for p in parts)
        carries = any(isinstance(p, Name) and p.ident in tainted for p in parts)
        return carries or (has_string and non_literal)

    changed = True
    while changed:
        changed = False
        for stmt in assigns:
            if stmt.target in tainted:
                continue
            value = stmt.value
            hit = False
            if isinstance(value, Name) and value.ident in tainted:
                hit = True
            elif isinstance(value, Binary) and value.op == "+":
                hit = chain_taints(_concat_parts(value))
            if hit:
                tainted.add(stmt.target)
                changed = True

    for stmt in walk_statements(ctx.raw_func.body):
        for expr in statement_expressions(stmt):
            for node in walk_expressions(expr):
                if (
                    not isinstance(node, Call)
                    or node.func not in (DB_READ_CALLS | DB_WRITE_CALLS)
                    or not node.args
                ):
                    continue
                sql = node.args[0]
                if isinstance(sql, Binary) and sql.op == "+":
                    if chain_taints(_concat_parts(sql)):
                        yield ctx.diag(
                            "EQ302",
                            sql,
                            f"the {node.func} argument splices program "
                            "values into the SQL text",
                        )
                elif isinstance(sql, Name) and sql.ident in tainted:
                    yield ctx.diag(
                        "EQ302",
                        node,
                        f"{sql.ident!r} was assembled by concatenation "
                        "before reaching " + node.func,
                    )


# ----------------------------------------------------------------------
# EQ303 — dead query results


@lint_pass("dead-result", codes=("EQ303",))
def check_dead_results(ctx: LintContext) -> Iterable[Diagnostic]:
    """Query results that are never read (raw AST, flow-insensitive)."""
    func = ctx.raw_func
    uses: dict[str, int] = {}
    for stmt in walk_statements(func.body):
        for expr in statement_expressions(stmt):
            for node in walk_expressions(expr):
                if isinstance(node, Name):
                    uses[node.ident] = uses.get(node.ident, 0) + 1

    for stmt in walk_statements(func.body):
        if (
            isinstance(stmt, ExprStmt)
            and isinstance(stmt.expr, Call)
            and stmt.expr.func in DB_READ_CALLS
        ):
            yield ctx.diag(
                "EQ303",
                stmt.expr,
                f"the {stmt.expr.func} result is discarded",
            )
        elif (
            isinstance(stmt, Assign)
            and isinstance(stmt.value, Call)
            and stmt.value.func in DB_READ_CALLS
            and uses.get(stmt.target, 0) == 0
        ):
            yield ctx.diag(
                "EQ303",
                stmt,
                f"{stmt.target!r} is assigned a {stmt.value.func} result "
                "but never read",
                variable=stmt.target,
            )


# ----------------------------------------------------------------------
# EQ304 — unclosed cursors


@lint_pass("unclosed-cursor", codes=("EQ304",))
def check_unclosed_cursors(ctx: LintContext) -> Iterable[Diagnostic]:
    """``executeQueryCursor`` results with no ``close()`` call (raw AST)."""
    func = ctx.raw_func
    closed: set[str] = set()
    for stmt in walk_statements(func.body):
        for expr in statement_expressions(stmt):
            for node in walk_expressions(expr):
                if (
                    isinstance(node, MethodCall)
                    and node.method == "close"
                    and isinstance(node.receiver, Name)
                ):
                    closed.add(node.receiver.ident)

    for stmt in walk_statements(func.body):
        if (
            isinstance(stmt, Assign)
            and isinstance(stmt.value, Call)
            and stmt.value.func == "executeQueryCursor"
            and stmt.target not in closed
        ):
            yield ctx.diag(
                "EQ304",
                stmt,
                f"cursor {stmt.target!r} is opened here",
                variable=stmt.target,
            )
