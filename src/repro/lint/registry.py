"""Pass registry and the shared analysis context.

A lint *pass* is a function ``(LintContext) -> Iterable[Diagnostic]``
registered with the :func:`lint_pass` decorator.  The engine runs every
registered pass over one function at a time and merges the results.

Passes see two views of the function:

* ``ctx.func`` — the **preprocessed** AST (the exact program the extractor
  analyses: prints rewritten to ``__out__`` appends, cursor ``while`` loops
  normalised to ``for``).  Soundness passes (EQ1xx) run here so their
  verdicts line up statement-for-statement with the D-IR builder.
* ``ctx.raw_func`` — the AST **as parsed**.  Anti-pattern passes (EQ3xx)
  run here because normalisation erases the idioms they look for (e.g.
  ``executeQueryCursor`` becomes ``executeQuery``).

Both views share source spans: preprocessing preserves ``line``/``col`` on
every statement it rewrites in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..analysis import (
    EffectSummary,
    PointsToResult,
    analyze_pointsto,
    function_effects,
)
from ..lang import ForEach, FunctionDef, Node, Program, walk_statements
from .codes import code_info
from .diagnostics import Diagnostic, Severity, SourceSpan


@dataclass
class LintContext:
    """Everything a pass may need about the function under analysis."""

    program: Program  # preprocessed
    raw_program: Program  # as parsed
    function: str
    effects: dict[str, EffectSummary] = field(default_factory=dict)
    #: When False, precision analyses (points-to) are disabled and passes
    #: must fall back to their purely syntactic verdicts.
    precision: bool = True
    _pointsto: PointsToResult | None = field(default=None, repr=False)

    @property
    def pointsto(self) -> PointsToResult | None:
        """Flow-sensitive points-to facts for ``ctx.func`` (lazily computed).

        ``None`` when the precision layer is disabled — passes treat that
        exactly like "no proof available".
        """
        if not self.precision:
            return None
        if self._pointsto is None:
            self._pointsto = analyze_pointsto(self.func, self.effects)
        return self._pointsto

    @property
    def func(self) -> FunctionDef:
        return self.program.function(self.function)

    @property
    def raw_func(self) -> FunctionDef:
        return self.raw_program.function(self.function)

    def cursor_loops(self) -> list[ForEach]:
        """Every ``ForEach`` in the preprocessed function, outermost first."""
        return [
            stmt
            for stmt in walk_statements(self.func.body)
            if isinstance(stmt, ForEach)
        ]

    def diag(
        self,
        code: str,
        node: Node,
        detail: str = "",
        *,
        variable: str = "",
        loop_sid: int = -1,
        severity: Severity | None = None,
    ) -> Diagnostic:
        """Build a diagnostic for ``code`` anchored at ``node``'s span.

        ``severity`` overrides the code's registered severity — used to
        downgrade an EQ1xx blocker to :attr:`Severity.INFO` when a static
        proof discharges it (see :attr:`Diagnostic.is_blocker`).
        """
        info = code_info(code)
        message = f"{info.title}: {detail}" if detail else info.title
        return Diagnostic(
            span=SourceSpan.of(node),
            code=code,
            severity=info.severity if severity is None else severity,
            message=message,
            function=self.function,
            variable=variable,
            loop_sid=loop_sid,
            hint=info.hint,
        )


LintPass = Callable[[LintContext], Iterable[Diagnostic]]

_PASSES: list[tuple[str, tuple[str, ...], LintPass]] = []


def lint_pass(name: str, codes: tuple[str, ...]):
    """Register a pass.  ``codes`` documents (and validates) what it emits."""
    for code in codes:
        code_info(code)  # fail fast on typos at import time

    def register(fn: LintPass) -> LintPass:
        _PASSES.append((name, codes, fn))
        return fn

    return register


def registered_passes() -> list[tuple[str, tuple[str, ...], LintPass]]:
    """The registered passes, in registration order."""
    return list(_PASSES)


def make_context(
    program: Program,
    raw_program: Program,
    function: str,
    *,
    precision: bool = True,
) -> LintContext:
    return LintContext(
        program=program,
        raw_program=raw_program,
        function=function,
        effects=function_effects(program),
        precision=precision,
    )


def run_passes(ctx: LintContext) -> list[Diagnostic]:
    """Run every registered pass and return sorted, de-duplicated findings."""
    findings: set[Diagnostic] = set()
    for _name, codes, fn in _PASSES:
        for diag in fn(ctx):
            if diag.code not in codes:
                raise AssertionError(
                    f"pass {_name!r} emitted undeclared code {diag.code}"
                )
            findings.add(diag)
    return sorted(findings)
