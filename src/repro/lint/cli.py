"""The ``python -m repro lint`` subcommand.

Lives here so the lint layer owns its whole vertical, mirroring
``repro.batch.cli``; ``__main__`` just registers the parser.  Linting
needs no schema: the passes are purely syntactic/dataflow, so the command
works on any directory of sources out of the box.
"""

from __future__ import annotations

import json

from ..frontends import available_frontends
from .diagnostics import Severity
from .service import lint_directory

#: ``--fail-on`` choices; ``none`` disables threshold-based failure.
FAIL_ON_CHOICES = ("error", "warning", "info", "none")


def fail_threshold(name: str) -> Severity | None:
    return None if name == "none" else Severity.parse(name)


def add_lint_parser(sub) -> None:
    """Register the ``lint`` subcommand on an argparse subparsers object."""
    lint = sub.add_parser(
        "lint",
        help="check sources for soundness blockers and anti-patterns",
    )
    lint.add_argument("directory", help="directory (or file) to lint")
    lint.add_argument(
        "--frontend",
        default=None,
        choices=list(available_frontends()),
        help="restrict linting to one language frontend "
        "(default: auto-detect every registered frontend by file suffix)",
    )
    lint.add_argument(
        "--fail-on",
        default="error",
        choices=FAIL_ON_CHOICES,
        help="exit non-zero when a finding at or above this severity exists "
        "(default: error)",
    )
    lint.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default 1 = serial)",
    )
    lint.add_argument(
        "--cache-dir",
        default=None,
        help="result cache location (default: DIRECTORY/.repro-cache)",
    )
    lint.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    lint.add_argument("--json", action="store_true", help="emit the report as JSON")
    lint.set_defaults(func=cmd_lint)


def cmd_lint(args) -> int:
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    report = lint_directory(
        args.directory,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        frontend=args.frontend,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    if not report.units and not report.parse_errors:
        print(f"no source files found under {args.directory}")
        return 1
    if report.parse_errors:
        return 1
    if report.exceeds(fail_threshold(args.fail_on)):
        return 1
    return 0
