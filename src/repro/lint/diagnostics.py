"""Diagnostic objects: severity levels, source spans, coded findings.

Every finding the lint passes or the extractor produce is a
:class:`Diagnostic` with a stable code (see :mod:`repro.lint.codes`), a
severity, a human message, and a source span pointing into the analysed
function.  Diagnostics are value objects: frozen, hashable, orderable by
source position, and JSON-serialisable via :meth:`Diagnostic.to_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from ..lang import Node


class Severity(IntEnum):
    """Severity ladder; comparisons follow the numeric order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()

    @staticmethod
    def parse(text: str) -> "Severity":
        try:
            return Severity[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


@dataclass(frozen=True, order=True)
class SourceSpan:
    """A 1-based (line, column) position; (0, 0) means synthetic."""

    line: int = 0
    col: int = 0

    @property
    def is_empty(self) -> bool:
        return self.line <= 0

    @staticmethod
    def of(node: Node) -> "SourceSpan":
        return SourceSpan(line=getattr(node, "line", 0), col=getattr(node, "col", 0))

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {"line": self.line, "col": self.col}


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One coded lint finding.

    The field order makes diagnostics sort by source position, then code —
    the order reports are rendered in.
    """

    span: SourceSpan
    code: str
    severity: Severity
    message: str
    function: str = ""
    variable: str = ""  # variable-scoped findings name the affected variable
    loop_sid: int = field(default=-1, compare=False)  # preprocessed loop sid
    hint: str = ""

    @property
    def is_blocker(self) -> bool:
        """EQ1xx codes are soundness blockers: extraction must not proceed.

        A pass may *downgrade* an EQ1xx finding to :attr:`Severity.INFO`
        when a static proof (e.g. points-to showing a value never escapes)
        discharges the soundness obligation — the finding stays visible in
        reports but no longer gates extraction.
        """
        return self.code.startswith("EQ1") and self.severity >= Severity.ERROR

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "span": self.span.to_dict(),
            "function": self.function,
            "variable": self.variable,
            "loop_sid": self.loop_sid,
            "hint": self.hint,
        }

    def render(self, path: str = "") -> str:
        """One ``path:line:col: severity CODE message`` line."""
        prefix = f"{path}:{self.span}" if path else str(self.span)
        where = f" [{self.function}]" if self.function else ""
        return f"{prefix}: {self.severity} {self.code} {self.message}{where}"
