"""The stable diagnostic code table.

Code bands:

* ``EQ1xx`` — **soundness blockers**.  The loop (or one variable in it)
  violates a precondition the extractor's model cannot express; extracting
  anyway could change program behaviour.  The extractor refuses to extract
  anything these codes cover.
* ``EQ2xx`` — **extraction-quality warnings**.  The program is handled
  soundly but a variable could not be (fully) extracted; the code says why.
* ``EQ3xx`` — **application anti-patterns**.  Database-usage smells worth
  fixing whether or not extraction succeeds (N+1 queries, string-built SQL,
  dead results, unclosed cursors).

Codes are part of the public surface: tests, CI jobs, and downstream
tooling match on them, so existing numbers must never be renumbered or
reused.  New codes append within their band.
"""

from __future__ import annotations

from dataclasses import dataclass

from .diagnostics import Severity


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    severity: Severity
    title: str
    hint: str


def _info(code: str, severity: Severity, title: str, hint: str) -> CodeInfo:
    return CodeInfo(code=code, severity=severity, title=title, hint=hint)


CODES: dict[str, CodeInfo] = {
    info.code: info
    for info in [
        # -- EQ1xx: soundness blockers -------------------------------------
        _info(
            "EQ101",
            Severity.ERROR,
            "database write inside a cursor loop",
            "hoist the write out of the loop or express it as a single "
            "set-oriented UPDATE/INSERT/DELETE statement",
        ),
        _info(
            "EQ102",
            Severity.ERROR,
            "call to an unknown or recursive function inside a cursor loop",
            "define the callee in the same translation unit so it can be "
            "inlined, or move the call out of the loop",
        ),
        _info(
            "EQ103",
            Severity.ERROR,
            "value escapes the extraction analysis",
            "avoid mutating entities inside the loop and avoid passing the "
            "iterated result set to functions the analysis cannot see into",
        ),
        _info(
            "EQ104",
            Severity.ERROR,
            "query cursor consumed more than once",
            "a forward-only cursor is exhausted by its first loop; "
            "materialise the result with executeQuery or re-issue the query",
        ),
        _info(
            "EQ105",
            Severity.ERROR,
            "abnormal control flow inside a cursor loop",
            "restructure the break/continue/return so the loop body is "
            "straight-line or conditional code",
        ),
        _info(
            "EQ106",
            Severity.ERROR,
            "try/catch inside a cursor loop body",
            "move the exception handling outside the loop; extraction never "
            "crosses try/catch boundaries",
        ),
        # -- EQ2xx: extraction-quality warnings ----------------------------
        _info(
            "EQ201",
            Severity.WARNING,
            "unsupported construct in the variable's computation",
            "the computation uses an operation the D-IR cannot model",
        ),
        _info(
            "EQ202",
            Severity.WARNING,
            "P1 violation: no accumulation dependence cycle",
            "the variable is recomputed each iteration rather than "
            "accumulated, so there is no fold to extract",
        ),
        _info(
            "EQ203",
            Severity.WARNING,
            "P2 violation: loop-carried dependence on another variable",
            "the accumulation reads another loop-updated variable; only "
            "argmax/argmin-style dependences can be rescued",
        ),
        _info(
            "EQ204",
            Severity.WARNING,
            "transformation incomplete: a fold remains",
            "no rewrite rule chain reduced the fold to relational algebra",
        ),
        _info(
            "EQ205",
            Severity.WARNING,
            "F-IR extracted but no SQL emitter for some construct",
            "the algebraic form is known but the SQL generator cannot yet "
            "print it for the chosen dialect",
        ),
        _info(
            "EQ206",
            Severity.WARNING,
            "target variable is never assigned",
            "the requested variable has no value at the end of the function",
        ),
        _info(
            "EQ207",
            Severity.WARNING,
            "iterated collection is not a query result",
            "only loops over executeQuery results (or nested folds over "
            "them) can be turned into SQL",
        ),
        # -- EQ3xx: application anti-patterns ------------------------------
        _info(
            "EQ301",
            Severity.WARNING,
            "query executed inside a loop (N+1 pattern)",
            "combine the per-iteration query with the outer loop's query "
            "using a join or an IN list",
        ),
        _info(
            "EQ302",
            Severity.WARNING,
            "SQL assembled by string concatenation from non-literal parts",
            "use query parameters (:name placeholders) instead of "
            "concatenating values into the SQL text",
        ),
        _info(
            "EQ303",
            Severity.INFO,
            "query result is never used",
            "the database round-trip is wasted; delete the call or use its "
            "result",
        ),
        _info(
            "EQ304",
            Severity.INFO,
            "cursor is never closed",
            "call close() on executeQueryCursor results to release the "
            "underlying statement",
        ),
    ]
}

#: Codes that gate extraction (band EQ1xx).
BLOCKER_CODES = frozenset(code for code in CODES if code.startswith("EQ1"))


def code_info(code: str) -> CodeInfo:
    """Look up a code, raising ``KeyError`` with the full table on miss."""
    try:
        return CODES[code]
    except KeyError:
        known = ", ".join(sorted(CODES))
        raise KeyError(f"unknown diagnostic code {code!r} (known: {known})") from None
