"""Cost model for rewrite alternatives (paper Appendix C).

Estimates the simulated execution cost (milliseconds, matching the
:class:`~repro.db.CostParameters` accounting) of running a query plan and
of the client-side loop alternatives.  Cardinalities come from the actual
database when available, with standard selectivity defaults otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra import (
    Aggregate,
    Alias,
    Distinct,
    Join,
    Limit,
    OuterApply,
    Project,
    RelExpr,
    Select,
    Sort,
    Table,
)
from ..db import CostParameters, Database

#: Default selectivity of a selection predicate when nothing is known.
SELECTION_SELECTIVITY = 0.33
#: Default join selectivity (fraction of the cross product retained).
JOIN_SELECTIVITY = 0.1
#: Fraction of rows surviving duplicate elimination.
DISTINCT_RETENTION = 0.6
#: Estimated bytes per transferred row (schema-agnostic default).
ROW_BYTES = 40.0


@dataclass
class Estimate:
    """Cardinality and per-row width estimates for a query."""

    rows: float
    width_bytes: float = ROW_BYTES


class CostModel:
    """Estimates execution costs over the simulated connection parameters."""

    def __init__(self, database: Database | None = None, cost: CostParameters | None = None):
        self.database = database
        self.cost = cost or CostParameters()

    # ------------------------------------------------------------------
    # Cardinalities

    def cardinality(self, rel: RelExpr) -> Estimate:
        if isinstance(rel, Table):
            if self.database is not None and rel.name.lower() in {
                t.lower() for t in self.database.table_names()
            }:
                return Estimate(rows=float(len(self.database.rows(rel.name))))
            return Estimate(rows=1000.0)
        if isinstance(rel, Select):
            child = self.cardinality(rel.child)
            return Estimate(rows=child.rows * SELECTION_SELECTIVITY, width_bytes=child.width_bytes)
        if isinstance(rel, Project):
            child = self.cardinality(rel.child)
            width = ROW_BYTES * max(1, len(rel.items)) / 4
            return Estimate(rows=child.rows, width_bytes=width)
        if isinstance(rel, Join):
            left = self.cardinality(rel.left)
            right = self.cardinality(rel.right)
            if rel.kind == "cross":
                rows = left.rows * right.rows
            else:
                rows = max(left.rows, left.rows * right.rows * JOIN_SELECTIVITY)
            return Estimate(rows=rows, width_bytes=left.width_bytes + right.width_bytes)
        if isinstance(rel, OuterApply):
            left = self.cardinality(rel.left)
            return Estimate(rows=left.rows, width_bytes=left.width_bytes + ROW_BYTES / 4)
        if isinstance(rel, Aggregate):
            child = self.cardinality(rel.child)
            if not rel.group_by:
                return Estimate(rows=1.0, width_bytes=8.0)
            return Estimate(rows=max(1.0, child.rows**0.5), width_bytes=ROW_BYTES / 2)
        if isinstance(rel, Distinct):
            child = self.cardinality(rel.child)
            return Estimate(rows=child.rows * DISTINCT_RETENTION, width_bytes=child.width_bytes)
        if isinstance(rel, Sort):
            return self.cardinality(rel.child)
        if isinstance(rel, Limit):
            child = self.cardinality(rel.child)
            return Estimate(rows=min(child.rows, rel.count), width_bytes=child.width_bytes)
        if isinstance(rel, Alias):
            return self.cardinality(rel.child)
        return Estimate(rows=100.0)

    def scanned_rows(self, rel: RelExpr) -> float:
        total = 0.0
        if isinstance(rel, Table):
            return self.cardinality(rel).rows
        for child in rel.children():
            total += self.scanned_rows(child)
        return total

    # ------------------------------------------------------------------
    # Costs

    def query_cost_ms(self, rel: RelExpr) -> float:
        """End-to-end cost of executing one query: round trip + server scan
        + transfer of the result."""
        estimate = self.cardinality(rel)
        scanned = self.scanned_rows(rel)
        return (
            self.cost.round_trip_ms
            + self.cost.per_query_overhead_ms
            + scanned * self.cost.per_scanned_row_ms
            + estimate.rows * self.cost.per_result_row_ms
            + estimate.rows * estimate.width_bytes / self.cost.bytes_per_ms
        )

    def explain_cost_ms(self, explain: dict) -> float:
        """Cost of an *executed* physical plan from its ``explain()`` tree.

        Uses the plan's actual per-operator row counts (``rows_scanned``
        summed over the tree, result rows at the root) in place of the
        selectivity-based estimates — the feedback path from the execution
        engine back into the cost model."""
        from ..db.physical import total_scanned

        scanned = float(total_scanned(explain))
        result_rows = float(explain.get("rows_out") or 0)
        return (
            self.cost.round_trip_ms
            + self.cost.per_query_overhead_ms
            + scanned * self.cost.per_scanned_row_ms
            + result_rows * self.cost.per_result_row_ms
            + result_rows * ROW_BYTES / self.cost.bytes_per_ms
        )

    def client_loop_cost_ms(self, rows: float, work_per_row: float = 0.001) -> float:
        """Cost of iterating ``rows`` results client-side."""
        return rows * work_per_row

    def per_row_queries_cost_ms(self, outer_rows: float, inner_rel: RelExpr) -> float:
        """Cost of executing a correlated query once per outer row (the N+1
        pattern batching and T7 eliminate)."""
        return outer_rows * self.query_cost_ms(inner_rel)
