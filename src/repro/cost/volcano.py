"""Cost-based choice of rewrites (paper Appendix C).

Builds the AND-OR DAG over a function's loops: per cursor loop with an
extraction result, one group with two alternatives — ``keep`` (the original
imperative execution: fetch the iterated query, run the body per row,
including any nested per-row queries) and ``rewrite`` (execute the
extracted query/queries).  The memo search then picks the cheapest
combination, replacing Section 5.3's always-rewrite/all-or-nothing
heuristic with the cost-based decision the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.extractor import ExtractionReport, STATUS_SUCCESS
from ..db import CostParameters, Database
from ..ir import EQuery, EScalarQuery, EExists, ELoop, walk_enodes
from ..lang import Call, ForEach, statement_expressions, walk_expressions, walk_statements
from .andor import AndNode, Memo, PlanChoice
from .model import CostModel


@dataclass
class CostBasedPlan:
    """Outcome of the cost-based search."""

    rewrite_loops: set[int]
    keep_loops: set[int]
    total_cost_ms: float
    memo_size: int
    root: PlanChoice | None = None


def cost_based_plan(
    report: ExtractionReport,
    database: Database | None = None,
    cost: CostParameters | None = None,
) -> CostBasedPlan:
    """Choose, per loop, whether to use the extracted SQL.

    The Figure 7(a) situation — an aggregate extracted from a loop whose
    rows must be fetched anyway for other (unextractable) work — makes the
    extra aggregate query pure overhead; this search keeps the loop there,
    while rewriting loops whose extraction eliminates the row fetch.
    """
    model = CostModel(database, cost)
    memo = Memo()
    program = report.original
    func = program.function(report.function)

    loops = {
        stmt.sid: stmt
        for stmt in walk_statements(func.body)
        if isinstance(stmt, ForEach)
    }
    by_loop: dict[int, list] = {}
    for extraction in report.variables.values():
        if extraction.loop_sid >= 0:
            by_loop.setdefault(extraction.loop_sid, []).append(extraction)

    root = memo.new_group("function")
    root_children: list[int] = []

    for loop_sid, loop_stmt in loops.items():
        extractions = by_loop.get(loop_sid, [])
        group = memo.new_group(f"loop@{loop_sid}")
        root_children.append(group.group_id)

        keep_cost = _keep_cost(loop_stmt, extractions, model)
        group.add(AndNode(op="keep", local_cost=keep_cost, payload=loop_sid))

        extracted = [e for e in extractions if e.status == STATUS_SUCCESS and e.node is not None]
        failed = [e for e in extractions if e.status != STATUS_SUCCESS]
        if extracted and not failed:
            rewrite_cost = sum(
                _extraction_cost(extraction.node, model) for extraction in extracted
            )
            group.add(
                AndNode(op="rewrite", local_cost=rewrite_cost, payload=loop_sid)
            )
        elif extracted and failed:
            # Partial rewrite: the loop still runs (rows still fetched) plus
            # the extracted queries execute — the Figure 7(a) alternative.
            partial = keep_cost + sum(
                _extraction_cost(extraction.node, model) for extraction in extracted
            )
            group.add(
                AndNode(op="partial-rewrite", local_cost=partial, payload=loop_sid)
            )

    root.add(AndNode(op="seq", children=root_children))
    best = memo.optimize(root.group_id)

    rewrite = {p for p in best.payloads_of("rewrite")}
    keep = {p for p in best.payloads_of("keep")} | {
        p for p in best.payloads_of("partial-rewrite")
    }
    return CostBasedPlan(
        rewrite_loops=rewrite,
        keep_loops=keep,
        total_cost_ms=best.cost,
        memo_size=len(memo),
        root=best,
    )


def _keep_cost(loop_stmt: ForEach, extractions, model: CostModel) -> float:
    """Cost of executing the loop as written."""
    source_rel = _source_rel(extractions)
    if source_rel is None:
        outer_rows = 100.0
        fetch = model.cost.round_trip_ms + outer_rows * model.cost.per_result_row_ms
    else:
        outer_rows = model.cardinality(source_rel).rows
        fetch = model.query_cost_ms(source_rel)
    cost = fetch + model.client_loop_cost_ms(outer_rows)
    # Per-row queries in the body (the N+1 pattern).
    inner_count = 0
    for stmt in walk_statements(loop_stmt.body):
        for expr in statement_expressions(stmt):
            for node in walk_expressions(expr):
                if isinstance(node, Call) and node.func in (
                    "executeQuery",
                    "executeScalar",
                    "executeExists",
                ):
                    inner_count += 1
    cost += outer_rows * inner_count * (
        model.cost.round_trip_ms + model.cost.per_query_overhead_ms
    )
    return cost


def _source_rel(extractions):
    for extraction in extractions:
        if extraction.node is None:
            continue
        for node in walk_enodes(extraction.node):
            if isinstance(node, (EQuery, EScalarQuery)):
                return node.rel
    return None


def _extraction_cost(node, model: CostModel) -> float:
    """Cost of evaluating an extracted expression: each embedded query."""
    total = 0.0
    for sub in walk_enodes(node):
        if isinstance(sub, (EQuery, EScalarQuery, EExists)):
            total += model.query_cost_ms(sub.rel)
    return max(total, model.cost.round_trip_ms)
