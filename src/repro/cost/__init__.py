"""Cost-based application of transformations (paper Appendix C)."""

from .andor import AndNode, Group, Memo, PlanChoice
from .model import CostModel, Estimate
from .volcano import CostBasedPlan, cost_based_plan

__all__ = [
    "AndNode",
    "CostBasedPlan",
    "CostModel",
    "Estimate",
    "Group",
    "Memo",
    "PlanChoice",
    "cost_based_plan",
]
