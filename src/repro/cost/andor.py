"""AND-OR DAG memo structure (paper Appendix C).

The Volcano/Cascades representation of the rewrite space: each *group*
(OR-node, the paper's equivalence node) holds alternative ways of computing
the same result; each alternative (AND-node, operation node) names an
operator and child groups.  Regions map to groups; each way to compute a
region's results — the original imperative code, or a rewrite using
extracted SQL — is an operation node.  Duplicate alternatives are detected
by a structural key, mirroring the framework's duplicate-derivation
detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class AndNode:
    """An operation node: one way of computing a group's result."""

    op: str
    children: list[int] = field(default_factory=list)  # child group ids
    local_cost: float = 0.0
    payload: Any = None

    def key(self) -> tuple:
        return (self.op, tuple(self.children), round(self.local_cost, 9))


@dataclass
class Group:
    """An equivalence node: alternative computations of one result."""

    group_id: int
    label: str = ""
    alternatives: list[AndNode] = field(default_factory=list)
    _keys: set[tuple] = field(default_factory=set)

    def add(self, alternative: AndNode) -> bool:
        """Add an alternative unless an identical derivation exists."""
        key = alternative.key()
        if key in self._keys:
            return False
        self._keys.add(key)
        self.alternatives.append(alternative)
        return True


@dataclass
class PlanChoice:
    """The optimizer's decision for one group."""

    group_id: int
    cost: float
    alternative: AndNode
    children: list["PlanChoice"] = field(default_factory=list)

    def chosen_ops(self) -> list[str]:
        ops = [self.alternative.op]
        for child in self.children:
            ops.extend(child.chosen_ops())
        return ops

    def payloads_of(self, op: str) -> list[Any]:
        found = []
        if self.alternative.op == op:
            found.append(self.alternative.payload)
        for child in self.children:
            found.extend(child.payloads_of(op))
        return found


class Memo:
    """The group table with memoized best plans."""

    def __init__(self):
        self._groups: dict[int, Group] = {}
        self._best: dict[int, PlanChoice] = {}
        self._next_id = 0

    def new_group(self, label: str = "") -> Group:
        group = Group(group_id=self._next_id, label=label)
        self._groups[group.group_id] = group
        self._next_id += 1
        return group

    def group(self, group_id: int) -> Group:
        return self._groups[group_id]

    def __len__(self) -> int:
        return len(self._groups)

    # ------------------------------------------------------------------

    def optimize(self, group_id: int) -> PlanChoice:
        """Return the cheapest plan for a group (memoized, bottom-up)."""
        cached = self._best.get(group_id)
        if cached is not None:
            return cached
        group = self._groups[group_id]
        if not group.alternatives:
            raise ValueError(f"group {group_id} ({group.label}) has no alternatives")
        best: PlanChoice | None = None
        for alternative in group.alternatives:
            children = [self.optimize(child) for child in alternative.children]
            cost = alternative.local_cost + sum(c.cost for c in children)
            if best is None or cost < best.cost:
                best = PlanChoice(
                    group_id=group_id,
                    cost=cost,
                    alternative=alternative,
                    children=children,
                )
        assert best is not None
        self._best[group_id] = best
        return best
