"""F-IR transformation rules (paper Section 5.1 and Appendix B).

Every rule takes a fold node and returns a rewritten node or ``None`` when
it does not apply.  The rule set is confluent and terminating (Section 5.3):
each rule pushes computation from the folding function into the query, never
the other direction.

Implemented rules and their paper names:

====================  =====================================================
``rule_t6_init``      T6   fold with non-identity initial value
``rule_t2_predicate`` T2   predicate push (σ)
``rule_t5_aggregate`` T5.1 scalar aggregation (+ count, EXISTS/NOT EXISTS
                           from Appendix B "checking for existence")
``rule_t7_apply``     T7   outer apply for nested scalar queries; also
                           covers T5.2 (group-by) because a decorrelated
                           inner aggregate is exactly a correlated scalar
                           subquery
``rule_t1_t3_collect``T1 + T3  list/set construction with scalar pushes (π)
``rule_t4_join``      T4.1/4.2/4.3  join identification for nested loops
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra import (
    AggCall,
    AggItem,
    Aggregate,
    Catalog,
    Col,
    Distinct,
    Join,
    Lit,
    Param,
    Project,
    ProjectItem,
    RelExpr,
    Select,
    UnOp,
    bind_rel_params,
    conjoin,
    has_unique_key,
    strip_sort,
)
from ..fir import CapableButUnimplemented, NotScalarizable, scalarize
from ..ir import (
    DagBuilder,
    EAttr,
    EBoundVar,
    EConst,
    EExists,
    EFold,
    ENode,
    EOp,
    EQuery,
    EScalarQuery,
    EVar,
    walk_enodes,
)
from .decorrelate import (
    DecorrelationError,
    decorrelate_for_apply,
    decorrelate_for_join,
    ensure_alias,
    rename_single_output,
    split_params,
    split_top_project,
)


@dataclass
class RuleContext:
    """Shared state for one rule-application run."""

    dag: DagBuilder
    catalog: Catalog
    trace: list[str] = field(default_factory=list)
    disabled: frozenset[str] = frozenset()
    #: When False (keyword-search mode, Experiment 3: "ordering of data is
    #: not relevant"), rule T4.1's unique-key precondition is waived — the
    #: multiset join T4.3 is used instead.
    ordering_matters: bool = True
    #: Custom aggregation functions (paper Section 5.2: a folding function
    #: without a built-in SQL aggregate "can use a custom aggregation
    #: function ... inside the database").  Maps a fold operator to
    #: (aggregate name, identity value); e.g. {"*": ("product", 1)}.
    custom_aggregates: dict = field(default_factory=dict)

    def fire(self, name: str) -> None:
        self.trace.append(name)

    def enabled(self, name: str) -> bool:
        return name not in self.disabled


# ----------------------------------------------------------------------
# Shared helpers


def _collect_bindings(node: ENode, cursor: str) -> tuple[tuple[str, ENode], ...]:
    """Parameter bindings for the free inputs of an expression.

    ``EVar(x)`` scalarizes to ``Param(x)``; ``EAttr(EVar(x), f)`` to
    ``Param('x__f')``; an attribute of an *outer* loop's cursor (a bound
    variable other than ``cursor``) also becomes a parameter, whose binding
    the enclosing fold's rules later decorrelate.
    """
    bindings: dict[str, ENode] = {}
    for n in walk_enodes(node):
        if isinstance(n, EVar):
            bindings.setdefault(n.name, n)
        elif isinstance(n, EAttr) and isinstance(n.base, EVar):
            bindings.setdefault(f"{n.base.name}__{n.attr}", n)
        elif (
            isinstance(n, EAttr)
            and isinstance(n.base, EBoundVar)
            and n.base.name != cursor
        ):
            bindings.setdefault(f"{n.base.name}__{n.attr}", n)
    return tuple(sorted(bindings.items()))


def _merge_params(*param_sets: tuple[tuple[str, ENode], ...]) -> tuple[tuple[str, ENode], ...]:
    merged: dict[str, ENode] = {}
    for params in param_sets:
        for name, node in params:
            merged.setdefault(name, node)
    return tuple(sorted(merged.items()))


def _mentions_bound(node: ENode, name: str) -> bool:
    return any(
        isinstance(n, EBoundVar) and n.name == name for n in walk_enodes(node)
    )


_COMMUTATIVE = {"+", "*", "max", "min", "and", "or"}

_AGG_OF_OP = {"+": "sum", "max": "max", "min": "min"}
_COMBINE_OF_OP = {"+": "combine_sum", "max": "combine_max", "min": "combine_min"}

_APPEND_OPS = {"append", "insert"}


def _normalize_acc_first(func: ENode, var: str) -> ENode | None:
    """Normalise ``op(h, ⟨v⟩)`` to ``op(⟨v⟩, h)`` for commutative ops."""
    if not (isinstance(func, EOp) and len(func.operands) == 2):
        return None
    left, right = func.operands
    is_acc_left = isinstance(left, EBoundVar) and left.name == var
    is_acc_right = isinstance(right, EBoundVar) and right.name == var
    if is_acc_left and not _mentions_bound(right, var):
        return func
    if (
        is_acc_right
        and func.op in _COMMUTATIVE
        and not _mentions_bound(left, var)
    ):
        return EOp(func.op, (right, left))
    return None


# ----------------------------------------------------------------------
# Rule T6: fold with non-identity initial value (Appendix B)


def rule_t6_init(fold: EFold, ctx: RuleContext) -> ENode | None:
    """``fold[append, x, Q] → concat(x, fold[append, [], Q])`` (and the set
    analogue).  This exposes the empty-init form rules T1/T4 require —
    crucially it fires for inner folds whose init is the *outer* accumulator.
    """
    func = fold.func
    if not (isinstance(func, EOp) and func.op in _APPEND_OPS and len(func.operands) == 2):
        return None
    acc, _payload = func.operands
    if not (isinstance(acc, EBoundVar) and acc.name == fold.var):
        return None
    if isinstance(fold.init, EOp) and fold.init.op in ("empty_list", "empty_set"):
        return None  # already identity
    empty = ctx.dag.op("empty_list" if func.op == "append" else "empty_set")
    inner = ctx.dag.fold(
        func, empty, fold.source, fold.var, fold.cursor, fold.loop_sid, fold.span
    )
    combiner = "concat_list" if func.op == "append" else "union_set"
    ctx.fire("T6")
    return ctx.dag.op(combiner, fold.init, inner)


# ----------------------------------------------------------------------
# Rule T2: predicate push


def rule_t2_predicate(fold: EFold, ctx: RuleContext) -> ENode | None:
    """``f = ?[pred(t), g, ⟨v⟩]`` → push σ_pred into the source query."""
    func = fold.func
    if not (isinstance(func, EOp) and func.op == "?" and len(func.operands) == 3):
        return None
    if not isinstance(fold.source, EQuery):
        return None
    cond, if_true, if_false = func.operands
    negate = False
    if isinstance(if_true, EBoundVar) and if_true.name == fold.var:
        # `?[pred, ⟨v⟩, g]` — keep rows where pred is false.
        cond, if_true, if_false = cond, if_false, if_true
        negate = True
    if not (isinstance(if_false, EBoundVar) and if_false.name == fold.var):
        return None
    if _mentions_bound(cond, fold.var):
        return None
    try:
        pred = scalarize(cond, fold.cursor)
    except (NotScalarizable, CapableButUnimplemented):
        return None
    if negate:
        pred = UnOp("NOT", pred)
    source = fold.source
    new_rel = Select(source.rel, pred)
    params = _merge_params(source.params, _collect_bindings(cond, fold.cursor))
    ctx.fire("T2")
    return ctx.dag.fold(
        if_true,
        fold.init,
        ctx.dag.query(new_rel, params),
        fold.var,
        fold.cursor,
        fold.loop_sid,
        fold.span,
    )


# ----------------------------------------------------------------------
# Rule T5.1: scalar aggregation (+ EXISTS variants, Appendix B)


def rule_t5_aggregate(fold: EFold, ctx: RuleContext) -> ENode | None:
    if not isinstance(fold.source, EQuery):
        return None
    func = _normalize_acc_first(fold.func, fold.var)
    if func is None:
        return None
    op = func.op
    payload = func.operands[1]
    if _mentions_bound(payload, fold.var):
        return None
    source = fold.source

    if op == "or":
        return _exists_form(fold, payload, source, negated=False, ctx=ctx)
    if op == "and":
        return _exists_form(fold, payload, source, negated=True, ctx=ctx)
    if op not in _AGG_OF_OP and op not in ctx.custom_aggregates:
        return None

    # Scalar aggregation ignores iteration order, so any τ in the source
    # (an HQL `order by`) is dropped rather than rendered as an ORDER BY
    # over columns the aggregate block no longer exposes.
    agg_source = strip_sort(source.rel)

    # COUNT: `v = v + 1`.
    if op == "+" and payload == EConst(1):
        agg_rel: RelExpr = Aggregate(
            agg_source, (), (AggItem(AggCall("count", None), "agg"),)
        )
        scalar = ctx.dag.scalar_query(agg_rel, source.params)
        ctx.fire("T5.1-count")
        if fold.init == EConst(0):
            return scalar
        return ctx.dag.op("combine_count", fold.init, scalar)

    try:
        value = scalarize(payload, fold.cursor)
    except (NotScalarizable, CapableButUnimplemented):
        return None
    params = _merge_params(source.params, _collect_bindings(payload, fold.cursor))
    if op in _AGG_OF_OP:
        agg_rel = Aggregate(
            agg_source, (), (AggItem(AggCall(_AGG_OF_OP[op], value), "agg"),)
        )
        scalar = ctx.dag.scalar_query(agg_rel, params)
        ctx.fire("T5.1")
        if isinstance(fold.init, EConst) and fold.init.value is None:
            return scalar
        return ctx.dag.op(_COMBINE_OF_OP[op], fold.init, scalar)
    # Custom (user-defined) aggregate: combine via the fold operator itself,
    # defaulting the empty-input NULL to the operator's identity.
    agg_name, identity = ctx.custom_aggregates[op]
    agg_rel = Aggregate(agg_source, (), (AggItem(AggCall(agg_name, value), "agg"),))
    scalar = ctx.dag.scalar_query(agg_rel, params)
    ctx.fire("T5.1-custom")
    if isinstance(fold.init, EConst) and fold.init.value is None:
        return scalar
    defaulted = ctx.dag.op("coalesce", scalar, ctx.dag.const(identity))
    return ctx.dag.op(op, fold.init, defaulted)


def _exists_form(
    fold: EFold, payload: ENode, source: EQuery, negated: bool, ctx: RuleContext
) -> ENode | None:
    """Appendix B: ``v = v ∨ p(t)`` → EXISTS; ``v = v ∧ p(t)`` → NOT EXISTS."""
    try:
        pred = scalarize(payload, fold.cursor)
    except (NotScalarizable, CapableButUnimplemented):
        return None
    if negated:
        pred = UnOp("NOT", pred)
    # EXISTS only asks whether a row survives the predicate — order is moot.
    rel = Select(strip_sort(source.rel), pred)
    params = _merge_params(source.params, _collect_bindings(payload, fold.cursor))
    exists = ctx.dag.exists(rel, params, negated=negated)
    ctx.fire("T-exists" if not negated else "T-notexists")
    if not negated and fold.init == EConst(False):
        return exists
    if negated and fold.init == EConst(True):
        return exists
    return ctx.dag.op("and" if negated else "or", fold.init, exists)


# ----------------------------------------------------------------------
# Rule T7 (+ T5.2): eliminate correlated scalar subqueries via OUTER APPLY


def rule_t7_apply(fold: EFold, ctx: RuleContext) -> ENode | None:
    """Replace each correlated scalar subquery in an append payload with an
    OUTER APPLY column (paper Figure 13).  The inner aggregate produced for a
    nested group-by loop (rule T5.1 on the inner fold) is exactly such a
    subquery, so this rule also realises rule T5.2.
    """
    func = fold.func
    if not (
        isinstance(func, EOp) and func.op in _APPEND_OPS and len(func.operands) == 2
    ):
        return None
    acc, payload = func.operands
    if not (isinstance(acc, EBoundVar) and acc.name == fold.var):
        return None
    if not isinstance(fold.source, EQuery):
        return None
    correlated = [
        n
        for n in walk_enodes(payload)
        if isinstance(n, EScalarQuery)
        and any(_mentions_bound(v, fold.cursor) for _, v in n.params)
    ]
    if not correlated:
        return None

    source = fold.source
    taken: set[str] = set()
    left_rel, left_alias = ensure_alias(source.rel, taken, "q1")
    taken.add(left_alias)

    replacements: dict[ENode, ENode] = {}
    outer_params = [source.params]
    rel: RelExpr = left_rel
    for index, subquery in enumerate(dict.fromkeys(correlated)):
        try:
            bindings = split_params(subquery.params, fold.cursor, left_alias)
        except DecorrelationError:
            return None
        inner = decorrelate_for_apply(subquery.rel, bindings)
        column = f"c{index}"
        try:
            inner = rename_single_output(inner, column)
        except DecorrelationError:
            return None
        applied, apply_alias = ensure_alias(inner, taken, f"ap{index}")
        taken.add(apply_alias)
        from ..algebra import OuterApply

        rel = OuterApply(rel, applied)
        replacements[subquery] = ctx.dag.attr(
            ctx.dag.bound(fold.cursor), column
        )
        outer_params.append(bindings.outer)

    new_payload = _replace_nodes(payload, replacements, ctx.dag)
    params = _merge_params(*outer_params)
    ctx.fire("T7")
    return ctx.dag.fold(
        ctx.dag.intern(EOp(func.op, (acc, new_payload))),
        fold.init,
        ctx.dag.query(rel, params),
        fold.var,
        fold.cursor,
        fold.loop_sid,
        fold.span,
    )


def _replace_nodes(
    node: ENode, replacements: dict[ENode, ENode], dag: DagBuilder
) -> ENode:
    if node in replacements:
        return replacements[node]
    if isinstance(node, EOp):
        operands = tuple(_replace_nodes(c, replacements, dag) for c in node.operands)
        if operands == node.operands:
            return node
        return dag.intern(EOp(node.op, operands))
    if isinstance(node, EAttr):
        base = _replace_nodes(node.base, replacements, dag)
        if base is node.base:
            return node
        return dag.attr(base, node.attr)
    return node


# ----------------------------------------------------------------------
# Rules T1 + T3: collection construction with scalar push


def rule_t1_t3_collect(fold: EFold, ctx: RuleContext) -> ENode | None:
    func = fold.func
    if not (
        isinstance(func, EOp) and func.op in _APPEND_OPS and len(func.operands) == 2
    ):
        return None
    acc, payload = func.operands
    if not (isinstance(acc, EBoundVar) and acc.name == fold.var):
        return None
    if not isinstance(fold.source, EQuery):
        return None
    if not (isinstance(fold.init, EOp) and fold.init.op in ("empty_list", "empty_set")):
        return None
    if _mentions_bound(payload, fold.var):
        return None
    source = fold.source

    # T1: the payload is the whole tuple.  A set insert ignores iteration
    # order, so the source's τ (if any) is dropped before the δ.
    if isinstance(payload, EBoundVar) and payload.name == fold.cursor:
        ctx.fire("T1")
        rel: RelExpr = source.rel
        if func.op == "insert":
            rel = Distinct(strip_sort(rel))
        return ctx.dag.query(rel, source.params)

    # T3: scalar payload(s) pushed into a projection.
    items = _payload_items(payload, fold.cursor)
    if items is None:
        return None
    base = strip_sort(source.rel) if func.op == "insert" else source.rel
    rel = Project(base, items)
    if func.op == "insert":
        rel = Distinct(rel)
    params = _merge_params(source.params, _collect_bindings(payload, fold.cursor))
    ctx.fire("T1+T3")
    result = ctx.dag.query(rel, params)
    if isinstance(payload, EOp) and payload.op == "tuple":
        # The original collection held tuples; the rewritten program must
        # rebuild them from the result rows (handled by the emitter).
        return ctx.dag.op("as_pairs", result)
    return result


def _payload_items(
    payload: ENode, cursor: str
) -> tuple[ProjectItem, ...] | None:
    """Projection items for a scalar or tuple payload; None when not
    scalarizable (rules then do not fire)."""
    parts: list[ENode]
    if isinstance(payload, EOp) and payload.op == "tuple":
        parts = list(payload.operands)
    else:
        parts = [payload]
    items: list[ProjectItem] = []
    used: set[str] = set()
    for index, part in enumerate(parts):
        try:
            expr = scalarize(part, cursor)
        except (NotScalarizable, CapableButUnimplemented):
            return None
        if (
            isinstance(part, EAttr)
            and isinstance(part.base, EBoundVar)
            and part.base.name == cursor
            and part.attr not in used
        ):
            alias = part.attr
        else:
            alias = f"col{index}" if len(parts) > 1 else "val"
        used.add(alias)
        items.append(ProjectItem(expr, alias))
    return tuple(items)


# ----------------------------------------------------------------------
# Rule T4: join identification


def rule_t4_join(fold: EFold, ctx: RuleContext) -> ENode | None:
    """``fold[λv,t. concat(v, Q2(t)), [], Q1]`` → ``π(Q1 ⋈ Q2)``.

    T4.1 (list append) requires Q1 to have a unique key; T4.2 (set insert)
    adds δ; T4.3 (multiset) is the bare join.
    """
    func = fold.func
    if not (
        isinstance(func, EOp)
        and func.op in ("concat_list", "union_set")
        and len(func.operands) == 2
    ):
        return None
    acc, inner = func.operands
    if not (isinstance(acc, EBoundVar) and acc.name == fold.var):
        return None
    as_pairs = False
    if isinstance(inner, EOp) and inner.op == "as_pairs":
        # Tuple elements: the join result needs the same pair unwrapping.
        as_pairs = True
        inner = inner.operands[0]
    if not isinstance(inner, EQuery):
        return None
    if not isinstance(fold.source, EQuery):
        return None
    if not (isinstance(fold.init, EOp) and fold.init.op in ("empty_list", "empty_set")):
        return None
    correlated = any(_mentions_bound(v, fold.cursor) for _, v in inner.params)
    if not correlated:
        return None
    source = fold.source

    is_set = func.op == "union_set"
    if (
        not is_set
        and ctx.ordering_matters
        and not has_unique_key(source.rel, ctx.catalog)
    ):
        # T4.1 precondition: the outer query must have a unique key so the
        # paper's result ordering (Z1, Q1.K, Z2) is well defined.  In
        # unordered mode the multiset form (T4.3) applies without a key.
        return None

    taken: set[str] = set()
    left_rel, left_alias = _join_operand(source.rel, taken, "q1")
    taken.add(left_alias)
    try:
        bindings = split_params(inner.params, fold.cursor, left_alias)
    except DecorrelationError:
        return None

    # The fold's output columns are the inner query's projection; flatten
    # nested π chains so the base can be used as a join operand, and resolve
    # correlated parameters in the projected expressions against the outer
    # query's alias.
    right_base, right_items = _flatten_projects(inner.rel)
    if right_items is not None:
        from ..algebra import substitute_params

        right_items = tuple(
            ProjectItem(
                substitute_params(item.expr, bindings.cursor_bound), item.alias
            )
            for item in right_items
        )
    right_rel, right_alias = _join_operand(right_base, taken, "q2")
    taken.add(right_alias)
    try:
        clean_right, join_pred = decorrelate_for_join(right_rel, bindings, right_alias)
    except DecorrelationError:
        return None

    join: RelExpr = Join(left_rel, clean_right, join_pred, "inner")
    if not is_set and ctx.ordering_matters:
        # T4.1's output ordering is (Z1, Q1.K, Z2).  The iterated queries in
        # the paper's samples carry no τ, so ordering by the outer key
        # materialises the nested-loop iteration order explicitly rather
        # than relying on the engine's join order.
        from ..algebra import Sort, SortKey, key_of

        key = key_of(source.rel, ctx.catalog)
        if key:
            join = Sort(join, tuple(SortKey(Col(k, left_alias)) for k in key))
    if right_items is None:
        # Whole-tuple append: the output is the inner relation's columns.
        try:
            from ..algebra import output_columns

            names = output_columns(clean_right, ctx.catalog)
        except (TypeError, KeyError):
            names = []
        if names:
            right_items = tuple(
                ProjectItem(Col(name, right_alias)) for name in names
            )
    if right_items:
        join = Project(join, tuple(right_items))
    if is_set:
        join = Distinct(join)
    params = _merge_params(source.params, bindings.outer)
    ctx.fire("T4.2" if is_set else "T4.1")
    result = ctx.dag.query(join, params)
    if as_pairs:
        return ctx.dag.op("as_pairs", result)
    return result


def _join_operand(rel: RelExpr, taken: set[str], default: str) -> tuple[RelExpr, str]:
    """Prepare a relation for use as a join operand.

    Projections are stripped when they only rename nothing (plain columns),
    so alias-qualified row keys stay visible to the join predicate; complex
    projections are kept behind an Alias instead.
    """
    base, items = _flatten_projects(rel)
    if items is None or all(
        isinstance(i.expr, Col) and i.alias in (None, i.expr.name) for i in items
    ):
        return ensure_alias(base, taken, default)
    return ensure_alias(rel, taken, default)


def _flatten_projects(rel: RelExpr) -> tuple[RelExpr, tuple[ProjectItem, ...] | None]:
    """Strip and compose consecutive top-level projections.

    Returns (projection-free base, composed items or None).  Composition
    substitutes column references of an outer π with the inner π's
    expressions; bails out (keeps the outer π as the boundary) when the
    inner items are not plain columns.
    """
    items: tuple[ProjectItem, ...] | None = None
    while isinstance(rel, Project):
        inner_items = rel.items
        if items is None:
            items = inner_items
        else:
            mapping = {i.output_name: i.expr for i in inner_items}
            composed = []
            for item in items:
                composed.append(ProjectItem(_subst_cols(item.expr, mapping), item.alias))
            items = tuple(composed)
        rel = rel.child
    return rel, items


def _subst_cols(expr, mapping):
    from ..algebra import (
        AggCall,
        BinOp as _BinOp,
        CaseWhen as _CaseWhen,
        Func as _Func,
        UnOp as _UnOp,
    )

    if isinstance(expr, Col) and expr.qualifier is None and expr.name in mapping:
        return mapping[expr.name]
    if isinstance(expr, _BinOp):
        return _BinOp(expr.op, _subst_cols(expr.left, mapping), _subst_cols(expr.right, mapping))
    if isinstance(expr, _UnOp):
        return _UnOp(expr.op, _subst_cols(expr.operand, mapping))
    if isinstance(expr, _Func):
        return _Func(expr.name, tuple(_subst_cols(a, mapping) for a in expr.args))
    if isinstance(expr, AggCall):
        arg = None if expr.arg is None else _subst_cols(expr.arg, mapping)
        return AggCall(expr.func, arg, expr.distinct)
    if isinstance(expr, _CaseWhen):
        return _CaseWhen(
            _subst_cols(expr.cond, mapping),
            _subst_cols(expr.if_true, mapping),
            _subst_cols(expr.if_false, mapping),
        )
    return expr


#: Default rule order.  The set is confluent (Section 5.3), so order only
#: affects how quickly a normal form is reached, not which one.
DEFAULT_RULES = (
    ("T2", rule_t2_predicate),
    ("T5", rule_t5_aggregate),
    ("T7", rule_t7_apply),
    ("T1T3", rule_t1_t3_collect),
    ("T6", rule_t6_init),
    ("T4", rule_t4_join),
)
