"""F-IR transformation rules and the rule-application engine."""

from .decorrelate import (
    DecorrelationError,
    decorrelate_for_apply,
    decorrelate_for_join,
    ensure_alias,
    primary_alias,
    rename_single_output,
    split_params,
    split_top_project,
)
from .engine import RuleEngine
from .transforms import (
    DEFAULT_RULES,
    RuleContext,
    rule_t1_t3_collect,
    rule_t2_predicate,
    rule_t4_join,
    rule_t5_aggregate,
    rule_t6_init,
    rule_t7_apply,
)

__all__ = [
    "DEFAULT_RULES",
    "DecorrelationError",
    "RuleContext",
    "RuleEngine",
    "decorrelate_for_apply",
    "decorrelate_for_join",
    "ensure_alias",
    "primary_alias",
    "rename_single_output",
    "rule_t1_t3_collect",
    "rule_t2_predicate",
    "rule_t4_join",
    "rule_t5_aggregate",
    "rule_t6_init",
    "rule_t7_apply",
    "split_params",
    "split_top_project",
]
