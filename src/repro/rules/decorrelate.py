"""Decorrelation helpers shared by rules T4 (join) and T7 (outer apply).

A query nested in a loop body is *correlated*: its parameters are bound to
attributes of the loop cursor ``t``.  To turn the loop into a join or an
apply, each such parameter is replaced with a qualified column reference to
the outer query, and (for joins) the correlated conjuncts are lifted out of
the inner query's selections into the join predicate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra import (
    Aggregate,
    Alias,
    BinOp,
    Col,
    Distinct,
    Join,
    Limit,
    OuterApply,
    Param,
    Project,
    ProjectItem,
    RelExpr,
    ScalarExpr,
    Select,
    Sort,
    Table,
    bind_rel_params,
    conjoin,
    walk_scalar,
)
from ..ir import EAttr, EBoundVar, EConst, ENode, EVar, walk_enodes


class DecorrelationError(Exception):
    """The correlated query cannot be decorrelated by these rules."""


def primary_alias(rel: RelExpr) -> str | None:
    """The alias naming this query's rows, when one exists.

    Looks through order/filter operators for a single aliased base table or
    an Alias node.
    """
    if isinstance(rel, Table):
        return rel.alias or rel.name
    if isinstance(rel, Alias):
        return rel.name
    if isinstance(rel, (Select, Sort, Distinct, Limit)):
        return primary_alias(rel.child)
    return None


def ensure_alias(rel: RelExpr, taken: set[str], default: str) -> tuple[RelExpr, str]:
    """Return (rel, alias) giving the query a row alias distinct from
    ``taken``; wraps in :class:`Alias` when necessary."""
    alias = primary_alias(rel)
    if alias is not None and alias not in taken:
        return rel, alias
    candidate = default
    suffix = 1
    while candidate in taken:
        suffix += 1
        candidate = f"{default}{suffix}"
    return Alias(rel, candidate), candidate


def split_top_project(rel: RelExpr) -> tuple[RelExpr, tuple[ProjectItem, ...] | None]:
    """Strip a top-level π so it can be re-applied above a join.

    π is order-preserving, so hoisting it over the join is sound; it keeps
    the engine's alias-qualified row keys visible to the join predicate.
    """
    if isinstance(rel, Project):
        return rel.child, rel.items
    return rel, None


@dataclass
class CursorBindings:
    """Split of a nested query's parameter bindings.

    ``cursor_bound`` maps parameter name → the outer-query column expression
    it should become; ``outer`` are pass-through bindings (program inputs).
    """

    cursor_bound: dict[str, ScalarExpr]
    outer: tuple[tuple[str, ENode], ...]


def split_params(
    params: tuple[tuple[str, ENode], ...],
    cursor: str,
    outer_alias: str,
) -> CursorBindings:
    """Classify an inner query's parameter bindings.

    A binding to ``EAttr(⟨cursor⟩, a)`` becomes the qualified column
    ``outer_alias.a``; bindings not involving the cursor pass through.
    Bindings involving the cursor in any more complex way fail.
    """
    cursor_bound: dict[str, ScalarExpr] = {}
    outer: list[tuple[str, ENode]] = []
    for name, node in params:
        if _mentions_cursor(node, cursor):
            column = _as_cursor_column(node, cursor, outer_alias)
            if column is None:
                raise DecorrelationError(
                    f"parameter :{name} bound to a complex cursor expression"
                )
            cursor_bound[name] = column
        else:
            outer.append((name, node))
    return CursorBindings(cursor_bound=cursor_bound, outer=tuple(outer))


def _mentions_cursor(node: ENode, cursor: str) -> bool:
    return any(
        isinstance(n, EBoundVar) and n.name == cursor for n in walk_enodes(node)
    )


def _as_cursor_column(node: ENode, cursor: str, outer_alias: str) -> ScalarExpr | None:
    if (
        isinstance(node, EAttr)
        and isinstance(node.base, EBoundVar)
        and node.base.name == cursor
    ):
        return Col(node.attr, outer_alias)
    return None


def decorrelate_for_apply(rel: RelExpr, bindings: CursorBindings) -> RelExpr:
    """Rule T7 path: substitute correlated parameters with qualified columns.

    The correlation predicate stays inside the inner query (the engine and
    the OUTER APPLY SQL form both evaluate it in the outer row's scope).
    """
    return bind_rel_params(rel, dict(bindings.cursor_bound))


def decorrelate_for_join(
    rel: RelExpr, bindings: CursorBindings, inner_alias: str
) -> tuple[RelExpr, ScalarExpr | None]:
    """Rule T4 path: lift correlated conjuncts into a join predicate.

    Returns (inner query without the correlated conjuncts, join predicate).
    Correlated parameters may only appear inside selection predicates; the
    lifted conjuncts get their bare inner columns qualified by
    ``inner_alias`` so the join predicate is unambiguous.
    """
    bound_names = set(bindings.cursor_bound)
    extracted: list[ScalarExpr] = []

    def rewrite(node: RelExpr) -> RelExpr:
        if isinstance(node, Select):
            child = rewrite(node.child)
            kept: list[ScalarExpr] = []
            for conjunct in _conjuncts(node.pred):
                if _mentions_params(conjunct, bound_names):
                    lifted = _qualify_columns(conjunct, inner_alias)
                    lifted = _substitute(lifted, bindings.cursor_bound)
                    extracted.append(lifted)
                else:
                    kept.append(conjunct)
            pred = conjoin(*kept)
            if pred is None:
                return child
            return Select(child, pred)
        if isinstance(node, (Sort, Distinct, Limit, Project, Aggregate)):
            rebuilt = _rebuild_one_child(node, rewrite(node.children()[0]))
            return rebuilt
        if isinstance(node, Table):
            return node
        if isinstance(node, Alias):
            return Alias(rewrite(node.child), node.name)
        if isinstance(node, (Join, OuterApply)):
            raise DecorrelationError("nested join inside correlated query")
        raise DecorrelationError(f"cannot decorrelate {type(node).__name__}")

    clean = rewrite(rel)
    # Any remaining correlated parameter (e.g. in a projection) defeats the
    # join form.
    remaining = _rel_param_names(clean) & bound_names
    if remaining:
        raise DecorrelationError(
            "correlated parameters outside selection predicates: "
            + ", ".join(sorted(remaining))
        )
    return clean, conjoin(*extracted)


def _rebuild_one_child(node: RelExpr, child: RelExpr) -> RelExpr:
    if isinstance(node, Sort):
        return Sort(child, node.keys)
    if isinstance(node, Distinct):
        return Distinct(child)
    if isinstance(node, Limit):
        return Limit(child, node.count)
    if isinstance(node, Project):
        return Project(child, node.items)
    if isinstance(node, Aggregate):
        return Aggregate(child, node.group_by, node.aggs)
    raise TypeError(type(node).__name__)


def _conjuncts(pred: ScalarExpr) -> list[ScalarExpr]:
    if isinstance(pred, BinOp) and pred.op.upper() == "AND":
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return [pred]


def _mentions_params(expr: ScalarExpr, names: set[str]) -> bool:
    return any(
        isinstance(node, Param) and node.name in names for node in walk_scalar(expr)
    )


def _qualify_columns(expr: ScalarExpr, alias: str) -> ScalarExpr:
    """Qualify bare column references with the inner query's alias."""
    from ..algebra import rename_columns

    mapping: dict[str, str] = {}
    for node in walk_scalar(expr):
        if isinstance(node, Col) and node.qualifier is None:
            mapping[node.name] = f"{alias}.{node.name}"
    return rename_columns(expr, mapping)


def _substitute(expr: ScalarExpr, bindings: dict[str, ScalarExpr]) -> ScalarExpr:
    from ..algebra import substitute_params

    return substitute_params(expr, bindings)


def _rel_param_names(rel: RelExpr) -> set[str]:
    from ..algebra import query_params

    return query_params(rel)


def rename_single_output(rel: RelExpr, new_name: str) -> RelExpr:
    """Rename the single output column of a scalar query to ``new_name``."""
    if isinstance(rel, Project) and len(rel.items) == 1:
        return Project(rel.child, (ProjectItem(rel.items[0].expr, new_name),))
    if isinstance(rel, Aggregate) and not rel.group_by and len(rel.aggs) == 1:
        from ..algebra import AggItem

        return Aggregate(rel.child, (), (AggItem(rel.aggs[0].call, new_name),))
    if isinstance(rel, (Select, Sort, Limit, Distinct)):
        # Wrap instead of descending: a projection on top renames cleanly.
        return Project(rel, (ProjectItem(_single_output_col(rel), new_name),))
    raise DecorrelationError("scalar query with unclear output column")


def _single_output_col(rel: RelExpr) -> Col:
    if isinstance(rel, (Select, Sort, Limit, Distinct)):
        return _single_output_col(rel.children()[0])
    if isinstance(rel, Project) and len(rel.items) == 1:
        return Col(rel.items[0].output_name)
    if isinstance(rel, Aggregate) and not rel.group_by and len(rel.aggs) == 1:
        return Col(rel.aggs[0].output_name)
    raise DecorrelationError("scalar query with unclear output column")
