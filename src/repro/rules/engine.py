"""Rule-application engine (paper Section 5.3).

Applies the transformation rules bottom-up to a fixpoint.  Inner folds are
fully transformed before their enclosing fold is attempted (matching the
paper's Section 5.2 traversal), and every rule strictly pushes computation
into the query, so the rewriting terminates.

Before any rule fires, each query node's parameter bindings that do not
involve loop-bound variables are folded into the query itself (constants as
literals, program inputs as named parameters) — this is the paper's
"resolving assignments to intermediate variables [to] allow query
parameters to be expressed in terms of program inputs".
"""

from __future__ import annotations

from ..algebra import Catalog, Lit, Param, bind_rel_params
from ..ir import (
    DagBuilder,
    EAttr,
    EBoundVar,
    EConst,
    EExists,
    EFold,
    ELoop,
    ENode,
    EOp,
    EQuery,
    EScalarQuery,
    EVar,
)
from .transforms import DEFAULT_RULES, RuleContext

_MAX_REWRITES = 500


class RuleEngine:
    """Applies F-IR transformation rules to a fixpoint."""

    def __init__(
        self,
        catalog: Catalog,
        dag: DagBuilder | None = None,
        rules=DEFAULT_RULES,
        disabled: frozenset[str] = frozenset(),
        ordering_matters: bool = True,
        custom_aggregates: dict | None = None,
    ):
        self.catalog = catalog
        self.dag = dag or DagBuilder()
        self.rules = rules
        self.disabled = disabled
        self.ordering_matters = ordering_matters
        self.custom_aggregates = custom_aggregates or {}

    def transform(self, node: ENode) -> tuple[ENode, list[str]]:
        """Transform an expression; returns (result, fired-rule trace)."""
        ctx = RuleContext(
            dag=self.dag,
            catalog=self.catalog,
            disabled=self.disabled,
            ordering_matters=self.ordering_matters,
            custom_aggregates=self.custom_aggregates,
        )
        result = self._transform(node, ctx, budget=[_MAX_REWRITES])
        return result, ctx.trace

    # ------------------------------------------------------------------

    def _transform(self, node: ENode, ctx: RuleContext, budget: list[int]) -> ENode:
        node = self._transform_children(node, ctx, budget)
        if not isinstance(node, EFold):
            return node
        while budget[0] > 0:
            budget[0] -= 1
            rewritten = self._apply_one(node, ctx)
            if rewritten is None:
                return node
            result = self._transform(rewritten, ctx, budget)
            if not isinstance(result, EFold):
                return result
            node = result
        return node

    def _apply_one(self, fold: EFold, ctx: RuleContext) -> ENode | None:
        for name, rule in self.rules:
            if not ctx.enabled(name):
                continue
            result = rule(fold, ctx)
            if result is not None and result != fold:
                return result
        return None

    def _transform_children(
        self, node: ENode, ctx: RuleContext, budget: list[int]
    ) -> ENode:
        if isinstance(node, (EConst, EVar, EBoundVar)):
            return node
        if isinstance(node, EAttr):
            base = self._transform(node.base, ctx, budget)
            return node if base is node.base else ctx.dag.attr(base, node.attr)
        if isinstance(node, EOp):
            operands = tuple(self._transform(c, ctx, budget) for c in node.operands)
            rebuilt = (
                node if operands == node.operands else ctx.dag.intern(EOp(node.op, operands))
            )
            return _simplify_op(rebuilt, ctx.dag)
        if isinstance(node, (EQuery, EScalarQuery, EExists)):
            return self._normalize_query(node, ctx, budget)
        if isinstance(node, EFold):
            func = self._transform(node.func, ctx, budget)
            init = self._transform(node.init, ctx, budget)
            source = self._transform(node.source, ctx, budget)
            return ctx.dag.fold(
                func, init, source, node.var, node.cursor, node.loop_sid, node.span
            )
        if isinstance(node, ELoop):
            return node  # untranslated Loop: no rules apply
        raise TypeError(f"cannot transform {type(node).__name__}")

    def _normalize_query(self, node, ctx: RuleContext, budget: list[int]):
        """Fold constant / program-input parameter bindings into the query."""
        literal: dict[str, object] = {}
        as_param: dict[str, Param] = {}
        remaining: list[tuple[str, ENode]] = []
        for name, value in node.params:
            value = self._transform(value, ctx, budget)
            if isinstance(value, EConst):
                literal[name] = value.value
            elif isinstance(value, EVar):
                as_param[name] = Param(value.name)
            elif isinstance(value, EAttr) and isinstance(value.base, EVar):
                as_param[name] = Param(f"{value.base.name}__{value.attr}")
            else:
                remaining.append((name, value))
        rel = node.rel
        if literal:
            rel = bind_rel_params(rel, {k: Lit(v) for k, v in literal.items()})
        if as_param:
            rel = bind_rel_params(rel, dict(as_param))
        params = tuple(remaining)
        # Re-expose renamed program-input parameters as standard bindings so
        # downstream consumers see them uniformly.
        for original, param in as_param.items():
            node_binding = self._binding_node(param.name, ctx)
            params = params + ((param.name, node_binding),)
        params = tuple(sorted(dict(params).items()))
        if isinstance(node, EQuery):
            return ctx.dag.query(rel, params)
        if isinstance(node, EScalarQuery):
            return ctx.dag.scalar_query(rel, params)
        return ctx.dag.exists(rel, params, node.negated)

    def _binding_node(self, param_name: str, ctx: RuleContext) -> ENode:
        if "__" in param_name:
            base, attr = param_name.split("__", 1)
            return ctx.dag.attr(ctx.dag.var(base), attr)
        return ctx.dag.var(param_name)


def _simplify_op(node: EOp, dag: DagBuilder) -> ENode:
    """Local algebraic cleanups after child rewriting."""
    if node.op == "concat_list" and len(node.operands) == 2:
        left, right = node.operands
        if isinstance(left, EOp) and left.op == "empty_list":
            return right
    if node.op == "union_set" and len(node.operands) == 2:
        left, right = node.operands
        if isinstance(left, EOp) and left.op == "empty_set":
            return right
    if node.op == "or" and len(node.operands) == 2:
        if node.operands[0] == EConst(False):
            return node.operands[1]
    if node.op == "and" and len(node.operands) == 2:
        if node.operands[0] == EConst(True):
            return node.operands[1]
    if node.op == "?" and isinstance(node.operands[0], EConst):
        return node.operands[1] if node.operands[0].value else node.operands[2]
    folded = _fold_constant_op(node, dag)
    if folded is not None:
        return folded
    return node


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _fold_constant_op(node: EOp, dag: DagBuilder) -> ENode | None:
    """Fold binary operators over literal operands, mirroring the SCCP
    lattice's deliberately narrow semantics (:mod:`repro.analysis.ssa`):
    integer arithmetic (never floats, never the truncating ``/`` and ``%``),
    string concatenation, ordered comparisons on ints and strings,
    (in)equality on scalars of matching type, min/max, and boolean
    connectives.  Returns ``None`` when nothing folds."""
    if len(node.operands) != 2 or not all(
        isinstance(operand, EConst) for operand in node.operands
    ):
        return None
    a, b = (operand.value for operand in node.operands)
    op = node.op
    if op in ("+", "-", "*"):
        if _is_int(a) and _is_int(b):
            result = a + b if op == "+" else a - b if op == "-" else a * b
            return dag.const(result)
        if op == "+" and isinstance(a, str) and isinstance(b, str):
            return dag.const(a + b)
        return None
    if op in ("max", "min"):
        if _is_int(a) and _is_int(b):
            return dag.const(max(a, b) if op == "max" else min(a, b))
        return None
    if op in ("<", "<=", ">", ">="):
        if (_is_int(a) and _is_int(b)) or (
            isinstance(a, str) and isinstance(b, str)
        ):
            verdict = {"<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b}[op]
            return dag.const(verdict)
        return None
    if op in ("==", "!="):
        if type(a) is type(b) and isinstance(a, (int, str, bool)):
            return dag.const(a == b if op == "==" else a != b)
        return None
    if op in ("and", "or"):
        if isinstance(a, bool) and isinstance(b, bool):
            return dag.const(a and b if op == "and" else a or b)
    return None
