"""Parser for the SQL/HQL subset appearing in application code.

The paper's programs issue queries through ``executeQuery("...")`` in two
styles: HQL-like (``from Board as b where b.rnd_id = 1``, SELECT implied)
and plain SQL (``SELECT ... FROM ... WHERE ...``).  This module parses both
into :mod:`repro.algebra` trees.  Named parameters (``:x``) become
:class:`~repro.algebra.Param` nodes, which the D-IR later resolves to
program variables.
"""

from __future__ import annotations

import re

from ..algebra import (
    AggCall,
    AggItem,
    Aggregate,
    Alias,
    BinOp,
    CaseWhen,
    Col,
    Distinct,
    ExistsExpr,
    Func,
    Join,
    Limit,
    Lit,
    OuterApply,
    Param,
    Project,
    ProjectItem,
    RelExpr,
    ScalarExpr,
    ScalarSubquery,
    Select,
    Sort,
    SortKey,
    Table,
    UnOp,
    conjoin,
)

_AGG_FUNCS = {"sum", "min", "max", "avg", "count"}


def register_aggregate_name(name: str) -> None:
    """Register a custom aggregate so the parser treats ``name(...)`` as an
    aggregate call (paper Section 5.2: "it is possible to use a custom
    aggregation function ... inside the database")."""
    _AGG_FUNCS.add(name.lower())

_TOKEN_RE = re.compile(
    r"""
    \s*(
        :[A-Za-z_][A-Za-z0-9_]*   # named parameter
      | [A-Za-z_][A-Za-z0-9_]*    # identifier / keyword
      | \d+\.\d+                  # float
      | \d+                       # int
      | '(?:[^']|'')*'            # string literal
      | <> | <= | >= | != | =     # comparison operators
      | [<>(),.*+\-/?%]           # single-char tokens
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "group",
    "order",
    "by",
    "having",
    "limit",
    "join",
    "inner",
    "left",
    "outer",
    "on",
    "as",
    "and",
    "or",
    "not",
    "asc",
    "desc",
    "null",
    "true",
    "false",
    "is",
    "in",
    "like",
    "exists",
    "case",
    "when",
    "then",
    "end",
    "apply",
    "coalesce",
}


class SqlParseError(Exception):
    """Raised when a query string cannot be parsed."""


def _tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise SqlParseError(f"cannot tokenize query near {text[pos:pos+20]!r}")
            break
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _SqlParser:
    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return ""

    def _peek_kw(self, offset: int = 0) -> str:
        return self._peek(offset).lower()

    def _advance(self) -> str:
        token = self._peek()
        self._pos += 1
        return token

    def _accept_kw(self, *keywords: str) -> bool:
        if self._peek_kw() in keywords:
            self._advance()
            return True
        return False

    def _expect_kw(self, keyword: str) -> None:
        if not self._accept_kw(keyword):
            raise SqlParseError(f"expected {keyword!r}, found {self._peek()!r}")

    def _expect(self, token: str) -> None:
        if self._peek() != token:
            raise SqlParseError(f"expected {token!r}, found {self._peek()!r}")
        self._advance()

    # ------------------------------------------------------------------

    def parse_query(self) -> RelExpr:
        rel = self._parse_query_body()
        if self._pos < len(self._tokens):
            raise SqlParseError(f"trailing tokens: {self._tokens[self._pos:]!r}")
        return rel

    def _parse_query_body(self) -> RelExpr:
        select_items: list[ProjectItem] | None = None
        distinct = False
        if self._accept_kw("select"):
            distinct = self._accept_kw("distinct")
            select_items = self._parse_select_list()
        self._expect_kw("from")
        rel = self._parse_from()
        if self._accept_kw("where"):
            rel = Select(rel, self._parse_expr())

        group_by: list[ScalarExpr] = []
        if self._peek_kw() == "group":
            self._advance()
            self._expect_kw("by")
            group_by.append(self._parse_expr())
            while self._peek() == ",":
                self._advance()
                group_by.append(self._parse_expr())

        having = None
        if self._accept_kw("having"):
            having = self._parse_expr()

        rel = self._apply_projection(rel, select_items, group_by)
        if having is not None:
            rel = Select(rel, having)
        if distinct:
            # DISTINCT applies before ORDER BY / LIMIT.
            rel = Distinct(rel)
            distinct = False

        if self._peek_kw() == "order":
            self._advance()
            self._expect_kw("by")
            keys = [self._parse_sort_key()]
            while self._peek() == ",":
                self._advance()
                keys.append(self._parse_sort_key())
            rel = Sort(rel, tuple(keys))

        if self._accept_kw("limit"):
            count_token = self._advance()
            rel = Limit(rel, int(count_token))

        if distinct:
            rel = Distinct(rel)
        return rel

    def _apply_projection(
        self,
        rel: RelExpr,
        select_items: list[ProjectItem] | None,
        group_by: list[ScalarExpr],
    ) -> RelExpr:
        if select_items is None:
            return rel  # HQL-style `from T ...` — select the whole entity
        has_agg = any(_contains_agg(item.expr) for item in select_items)
        if group_by or has_agg:
            aggs = []
            plain: list[ProjectItem] = []
            for item in select_items:
                if isinstance(item.expr, AggCall):
                    aggs.append(AggItem(item.expr, item.alias))
                else:
                    plain.append(item)
            agg_rel: RelExpr = Aggregate(rel, tuple(group_by), tuple(aggs))
            if plain and group_by:
                # When the select list is exactly [group columns..., aggs...]
                # in the aggregate's own output order, the γ needs no extra π.
                natural = [
                    g.name if isinstance(g, Col) else str(g) for g in group_by
                ]
                requested = [
                    item.alias
                    or (item.expr.name if isinstance(item.expr, Col) else str(item.expr))
                    for item in plain
                ]
                plain_first = all(
                    isinstance(item.expr, AggCall) for item in select_items[len(plain):]
                ) and not any(
                    isinstance(item.expr, AggCall) for item in select_items[: len(plain)]
                )
                if (
                    plain_first
                    and requested == natural
                    and all(item.alias is None for item in plain)
                ):
                    return agg_rel
                # Otherwise keep a projection on top so names/aliases come
                # out as requested.
                items = tuple(plain) + tuple(
                    ProjectItem(Col(a.output_name), a.alias) for a in aggs
                )
                return Project(agg_rel, items)
            return agg_rel
        if len(select_items) == 1 and _is_star(select_items[0].expr):
            return rel
        return Project(rel, tuple(select_items))

    def _parse_select_list(self) -> list[ProjectItem]:
        items = [self._parse_select_item()]
        while self._peek() == ",":
            self._advance()
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ProjectItem:
        if self._peek() == "*":
            self._advance()
            return ProjectItem(Col("*"))
        expr = self._parse_expr()
        alias = None
        if self._accept_kw("as"):
            alias = self._advance()
        elif (
            self._peek()
            and self._peek_kw() not in _KEYWORDS
            and re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", self._peek())
        ):
            alias = self._advance()
        return ProjectItem(expr, alias)

    def _parse_from(self) -> RelExpr:
        rel: RelExpr = self._parse_table_ref()
        while True:
            kw = self._peek_kw()
            if self._peek() == ",":
                self._advance()
                right = self._parse_table_ref()
                rel = Join(rel, right, None, "cross")
                continue
            if kw == "outer" and self._peek_kw(1) == "apply":
                self._advance()
                self._advance()
                right = self._parse_table_ref()
                rel = OuterApply(rel, right)
                continue
            if kw in ("join", "inner", "left"):
                kind = "inner"
                if self._peek_kw() == "left" and self._peek_kw(1) == "outer" and self._peek_kw(2) == "apply":
                    # `left outer apply` is accepted as a synonym.
                    self._advance()
                    self._advance()
                    self._advance()
                    right = self._parse_table_ref()
                    rel = OuterApply(rel, right)
                    continue
                if self._accept_kw("left"):
                    self._accept_kw("outer")
                    kind = "left"
                else:
                    self._accept_kw("inner")
                self._expect_kw("join")
                right = self._parse_table_ref()
                pred = None
                if self._accept_kw("on"):
                    pred = self._parse_expr()
                rel = Join(rel, right, pred, kind)
                continue
            return rel

    def _parse_table_ref(self) -> RelExpr:
        if self._peek() == "(":
            self._advance()
            inner = self._parse_query_body()
            self._expect(")")
            alias = None
            if self._accept_kw("as"):
                alias = self._advance()
            elif (
                self._peek()
                and self._peek_kw() not in _KEYWORDS
                and re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", self._peek())
            ):
                alias = self._advance()
            if alias is not None:
                return Alias(inner, alias)
            return inner
        name = self._advance()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
            raise SqlParseError(f"expected table name, found {name!r}")
        alias = None
        if self._accept_kw("as"):
            alias = self._advance()
        elif (
            self._peek()
            and self._peek_kw() not in _KEYWORDS
            and self._peek() not in (",", "(", ")")
            and re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", self._peek())
        ):
            alias = self._advance()
        return Table(name, alias)

    def _parse_sort_key(self) -> SortKey:
        expr = self._parse_expr()
        ascending = True
        if self._accept_kw("desc"):
            ascending = False
        else:
            self._accept_kw("asc")
        return SortKey(expr, ascending)

    # ------------------------------------------------------------------
    # Expressions

    def _parse_expr(self) -> ScalarExpr:
        return self._parse_or()

    def _parse_or(self) -> ScalarExpr:
        expr = self._parse_and()
        while self._peek_kw() == "or":
            self._advance()
            expr = BinOp("OR", expr, self._parse_and())
        return expr

    def _parse_and(self) -> ScalarExpr:
        expr = self._parse_not()
        while self._peek_kw() == "and":
            self._advance()
            expr = BinOp("AND", expr, self._parse_not())
        return expr

    def _parse_not(self) -> ScalarExpr:
        if self._peek_kw() == "not":
            self._advance()
            return UnOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ScalarExpr:
        left = self._parse_additive()
        op = self._peek()
        if op in ("=", "<>", "!=", "<", ">", "<=", ">="):
            self._advance()
            normalized = {"<>": "!=", "=": "="}.get(op, op)
            return BinOp(normalized, left, self._parse_additive())
        if self._peek_kw() == "is":
            self._advance()
            negated = self._accept_kw("not")
            self._expect_kw("null")
            result: ScalarExpr = Func("ISNULL", (left,))
            if negated:
                result = UnOp("NOT", result)
            return result
        if self._peek_kw() == "like":
            self._advance()
            return BinOp("LIKE", left, self._parse_additive())
        return left

    def _parse_additive(self) -> ScalarExpr:
        expr = self._parse_multiplicative()
        while self._peek() in ("+", "-"):
            op = self._advance()
            expr = BinOp(op, expr, self._parse_multiplicative())
        return expr

    def _parse_multiplicative(self) -> ScalarExpr:
        expr = self._parse_primary()
        while self._peek() in ("*", "/", "%"):
            op = self._advance()
            expr = BinOp(op, expr, self._parse_primary())
        return expr

    def _parse_primary(self) -> ScalarExpr:
        token = self._peek()
        if not token:
            raise SqlParseError("unexpected end of query")
        if token == "(":
            self._advance()
            if self._peek_kw() in ("select", "from"):
                inner = self._parse_query_body()
                self._expect(")")
                return ScalarSubquery(inner)
            expr = self._parse_expr()
            self._expect(")")
            return expr
        if token.lower() == "exists":
            self._advance()
            self._expect("(")
            inner = self._parse_query_body()
            self._expect(")")
            return ExistsExpr(inner)
        if token.lower() == "case":
            return self._parse_case()
        if token.startswith(":"):
            self._advance()
            return Param(token[1:])
        if token == "?":
            self._advance()
            return Param(f"p{self._pos}")
        if token.startswith("'"):
            self._advance()
            return Lit(token[1:-1].replace("''", "'"))
        if token == "-":
            # Unary minus: the generator prints Lit(-5) as "-5" and
            # UnOp("-", e) as "-(e)", so both must read back.
            self._advance()
            follower = self._peek()
            if follower and re.fullmatch(r"\d+", follower):
                self._advance()
                return Lit(-int(follower))
            if follower and re.fullmatch(r"\d+\.\d+", follower):
                self._advance()
                return Lit(-float(follower))
            return UnOp("-", self._parse_primary())
        if re.fullmatch(r"\d+", token):
            self._advance()
            return Lit(int(token))
        if re.fullmatch(r"\d+\.\d+", token):
            self._advance()
            return Lit(float(token))
        lowered = token.lower()
        if lowered == "null":
            self._advance()
            return Lit(None)
        if lowered == "true":
            self._advance()
            return Lit(True)
        if lowered == "false":
            self._advance()
            return Lit(False)
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
            self._advance()
            if self._peek() == "(":
                return self._parse_call(token)
            if self._peek() == ".":
                self._advance()
                member = self._advance()
                return Col(member, token)
            return Col(token)
        raise SqlParseError(f"unexpected token {token!r}")

    def _parse_case(self) -> ScalarExpr:
        """Parse ``CASE WHEN cond THEN a [ELSE b] END`` (single-branch)."""
        self._expect_kw("case")
        self._expect_kw("when")
        cond = self._parse_expr()
        self._expect_kw("then")
        if_true = self._parse_expr()
        if_false: ScalarExpr = Lit(None)
        if self._accept_kw("else"):
            if_false = self._parse_expr()
        self._expect_kw("end")
        return CaseWhen(cond, if_true, if_false)

    def _parse_call(self, name: str) -> ScalarExpr:
        self._expect("(")
        lowered = name.lower()
        if lowered == "count" and self._peek() == "*":
            self._advance()
            self._expect(")")
            return AggCall("count", None)
        distinct = False
        args: list[ScalarExpr] = []
        if self._peek() != ")":
            if self._peek_kw() == "distinct":
                self._advance()
                distinct = True
            args.append(self._parse_expr())
            while self._peek() == ",":
                self._advance()
                args.append(self._parse_expr())
        self._expect(")")
        if lowered in _AGG_FUNCS:
            return AggCall(lowered, args[0] if args else None, distinct)
        return Func(name.upper(), tuple(args))


def _contains_agg(expr: ScalarExpr) -> bool:
    if isinstance(expr, AggCall):
        return True
    return any(_contains_agg(child) for child in expr.children())


def _is_star(expr: ScalarExpr) -> bool:
    return isinstance(expr, Col) and expr.name == "*"


def parse_query(text: str) -> RelExpr:
    """Parse an SQL/HQL query string into a relational algebra tree."""
    tokens = _tokenize(text.strip().rstrip(";"))
    if not tokens:
        raise SqlParseError("empty query")
    return _SqlParser(tokens).parse_query()


def combine_conjunctive(rel: RelExpr, extra_pred: ScalarExpr) -> RelExpr:
    """Push one more conjunct into the top-level selection of ``rel``."""
    if isinstance(rel, Select):
        return Select(rel.child, conjoin(rel.pred, extra_pred))
    return Select(rel, extra_pred)
