"""SQL/HQL query-string parsing into relational algebra."""

from .parser import (
    SqlParseError,
    combine_conjunctive,
    parse_query,
    register_aggregate_name,
)

__all__ = [
    "SqlParseError",
    "combine_conjunctive",
    "parse_query",
    "register_aggregate_name",
]
