"""The language-agnostic ``Frontend`` contract and its registry.

The paper's analysis (Section 2) is explicitly language-independent: the
rule engine (T1-T7) operates on D-IR, never on source syntax.  This module
makes that boundary first-class.  A :class:`Frontend` owns everything that
is allowed to know the source language:

* **parse** — source text → the shared surface AST (:class:`repro.lang.Program`),
  with real 1-based ``line``/``col`` spans on every node so lint
  diagnostics point at the original source;
* **cursor/query-call recognition** — the frontend lowers its language's
  database idioms (JDBC ``executeQuery``/``rs.next()``, DB-API
  ``cursor.execute``/``fetchall``) onto the canonical ``executeQuery`` /
  ``executeScalar`` / ``executeUpdate`` call forms the D-IR builder
  consumes;
* **unparse** — the shared AST → source text in the frontend's own syntax,
  used to render rewritten programs.

Everything downstream of ``parse`` — region/CFG construction, D-IR,
F-IR, rules, SQL generation, lint, difftest, the rewrite space — runs
unchanged over every registered frontend.

Registry
--------

Frontends self-register under a stable name (``"minijava"``,
``"python"``).  :func:`get_frontend` resolves names, and
:func:`frontend_for_path` implements extension-based auto-detection
(``.mj`` → minijava, ``.py`` → python) for the batch scanner and CLI.
"""

from __future__ import annotations

import abc
from pathlib import Path

from ..lang import Program, number_statements, unparse_program

#: The frontend assumed when nothing selects one (full backward
#: compatibility: every pre-existing entry point parsed MiniJava).
DEFAULT_FRONTEND = "minijava"


class FrontendError(Exception):
    """A frontend failed to parse or lower a source text.

    Carries the 1-based source position when known (0 means unknown),
    mirroring :class:`repro.lang.errors.MiniJavaError`.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0):
        super().__init__(message)
        self.line = line
        self.col = col


class Frontend(abc.ABC):
    """One source language's ingestion pipeline.

    Subclasses define ``name`` (the registry key), ``language`` (a display
    label) and ``suffixes`` (file extensions claimed for auto-detection),
    and implement :meth:`parse`.
    """

    #: Stable registry key, e.g. ``"minijava"``.
    name: str = ""
    #: Human-readable language label, e.g. ``"MiniJava (Java subset)"``.
    language: str = ""
    #: File suffixes (with dots) this frontend claims during discovery.
    suffixes: tuple[str, ...] = ()

    @abc.abstractmethod
    def parse(self, source: str) -> Program:
        """Parse ``source`` into the shared surface AST.

        Implementations must produce statement-numbered programs whose
        nodes carry 1-based source spans, and must lower their language's
        query idioms onto the canonical ``executeQuery``-family calls.
        Parse failures raise the frontend's native error (a
        :class:`FrontendError` subclass or the language's own exception
        type).
        """

    def unparse(self, program: Program) -> str:
        """Render a (possibly rewritten) shared AST back to source text.

        The default renders the canonical surface syntax (MiniJava);
        frontends with their own concrete syntax override this.
        """
        return unparse_program(program)

    def describe(self) -> dict:
        """A JSON-ready description, used by ``--json`` outputs and docs."""
        return {
            "name": self.name,
            "language": self.language,
            "suffixes": list(self.suffixes),
        }

    # Convenience shared by subclasses.
    @staticmethod
    def _number(program: Program) -> Program:
        number_statements(program)
        return program


_REGISTRY: dict[str, Frontend] = {}


def register_frontend(frontend: Frontend, replace: bool = False) -> Frontend:
    """Register a frontend under its ``name``.

    Re-registering an existing name requires ``replace=True`` so two
    plugins cannot silently shadow each other.  Returns the frontend, so
    the call composes as a decorator-style one-liner.
    """
    if not isinstance(frontend, Frontend):
        raise TypeError(
            f"register_frontend expects a Frontend instance, got "
            f"{type(frontend).__name__}"
        )
    if not frontend.name:
        raise ValueError("frontend has no name")
    if frontend.name in _REGISTRY and not replace:
        raise ValueError(
            f"frontend {frontend.name!r} is already registered "
            f"(pass replace=True to override)"
        )
    _REGISTRY[frontend.name] = frontend
    return frontend


def get_frontend(name: str) -> Frontend:
    """The registered frontend named ``name``; ``ValueError`` on unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown frontend {name!r}; registered: {available_frontends()}"
        ) from None


def available_frontends() -> tuple[str, ...]:
    """Registered frontend names, sorted for stable display."""
    return tuple(sorted(_REGISTRY))


def source_suffixes() -> dict[str, str]:
    """suffix → frontend name for every registered frontend."""
    mapping: dict[str, str] = {}
    for name in sorted(_REGISTRY):
        for suffix in _REGISTRY[name].suffixes:
            mapping.setdefault(suffix, name)
    return mapping


def frontend_for_path(path: Path | str) -> Frontend | None:
    """Auto-detect the frontend for a file path by suffix, else ``None``."""
    suffix = Path(path).suffix
    name = source_suffixes().get(suffix)
    return _REGISTRY[name] if name is not None else None


def detect_frontend(path: Path | str, default: str = DEFAULT_FRONTEND) -> str:
    """The registry *name* claiming ``path``'s suffix, else ``default``.

    The name form is what :class:`~repro.core.ExtractOptions` and work
    units carry; resolve it with :func:`get_frontend` when the instance
    is needed.
    """
    return source_suffixes().get(Path(path).suffix, default)
