"""Language frontends: the ingestion boundary of the pipeline.

``repro.frontends`` owns everything that is allowed to know a source
language: parsing, source spans, cursor/query-call recognition, and
rendering rewritten programs back to text.  Downstream of a frontend the
pipeline is language-agnostic — regions, D-IR, F-IR, rules T1–T7, SQL
generation, lint, difftest and the rewrite space all operate on the
shared surface AST and the D-IR, never on syntax.

Built-in frontends (registered on import):

``minijava``  the original Java-subset pipeline (``.mj``/``.minijava``)
``python``    a Python DB-API subset via the stdlib ``ast`` (``.py``)

Third parties register additional languages with
:func:`register_frontend`; the batch scanner and CLI auto-detect by file
suffix through :func:`frontend_for_path`.
"""

from .base import (
    DEFAULT_FRONTEND,
    Frontend,
    FrontendError,
    available_frontends,
    detect_frontend,
    frontend_for_path,
    get_frontend,
    register_frontend,
    source_suffixes,
)
from .minijava import MiniJavaFrontend
from .python import PythonFrontend

#: The built-in frontends, registered exactly once at import time.
MINIJAVA = register_frontend(MiniJavaFrontend())
PYTHON = register_frontend(PythonFrontend())

__all__ = [
    "DEFAULT_FRONTEND",
    "Frontend",
    "FrontendError",
    "MiniJavaFrontend",
    "PythonFrontend",
    "available_frontends",
    "detect_frontend",
    "frontend_for_path",
    "get_frontend",
    "register_frontend",
    "source_suffixes",
]
