"""The MiniJava frontend: the original pipeline behind the new interface.

MiniJava was the hard-wired ingestion path from the seed onward; this
module retrofits it as just another :class:`~repro.frontends.Frontend`.
All the language-specific machinery stays in :mod:`repro.lang` — the
frontend is a thin adapter, which is the point: nothing outside
``repro.frontends`` and ``repro.lang`` knows MiniJava exists.
"""

from __future__ import annotations

from ..lang import Program, parse_program, unparse_program
from .base import Frontend


class MiniJavaFrontend(Frontend):
    """Parses the MiniJava (Java subset) surface syntax."""

    name = "minijava"
    language = "MiniJava (Java subset)"
    suffixes = (".mj", ".minijava")

    def parse(self, source: str) -> Program:
        # parse_program already numbers statements and attaches spans;
        # JDBC cursor-loop recognition (rs = executeQuery(...);
        # while (rs.next())) happens in ir.preprocess, shared by design
        # with every frontend that lowers onto the canonical call forms.
        return parse_program(source)

    def unparse(self, program: Program) -> str:
        return unparse_program(program)
