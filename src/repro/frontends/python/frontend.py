"""The Python DB-API frontend."""

from __future__ import annotations

from ...lang import Program
from ..base import Frontend
from .lower import parse_python
from .unparser import unparse_python_program


class PythonFrontend(Frontend):
    """Parses a Python subset over DB-API cursor idioms.

    Uses the standard-library ``ast`` module; every top-level ``def``
    becomes one analysable function.  See :mod:`.lower` for the exact
    subset and the cursor/query recognition rules.
    """

    name = "python"
    language = "Python (DB-API subset)"
    suffixes = (".py",)

    def parse(self, source: str) -> Program:
        return parse_python(source)

    def unparse(self, program: Program) -> str:
        return unparse_python_program(program)
