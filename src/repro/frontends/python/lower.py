"""Lowering a Python DB-API subset onto the shared surface AST.

The subset covers the shapes database application code actually takes
(the ``frappe.db.sql`` / DB-API scanning idiom): a function obtains a
cursor, executes a query, then iterates, aggregates or accumulates the
rows.  Recognised idioms and their canonical lowerings:

====================================  =====================================
Python                                shared AST
====================================  =====================================
``cur = conn.cursor()``               (dropped; ``cur`` marked as a cursor)
``cur.execute("SELECT ...")``         ``cur = executeQuery("SELECT ...");``
``cur.execute(sql, (x,))``            placeholders (``?``/``%s``) spliced as
                                      concatenation parameters
``cur.execute("UPDATE ...")``         ``executeUpdate("...")`` (DB poisoned)
``rows = cur.fetchall()``             ``rows = cur;``
``cur.fetchone()[0]``                 ``executeScalar("...")`` (last query)
``for row in cur: ...``               ``for (row : cur) ...``
``row["name"]`` / ``row.name``        ``row.name`` (field access)
``acc.append(x)`` / ``acc.add(x)``    collection append/insert
``d[k] = v``                          ``d.put(k, v)``
``total += x``                        ``total = total + x;``
``print(x)``                          output-stream append (preprocessing)
``f"... {x}"``                        string concatenation (query params)
====================================  =====================================

Lowering is *total*: every function lowers to something.  Constructs
outside the subset become opaque — an unresolvable call
(:data:`OPAQUE_CALL`) in expression position, a non-cursor ``while`` for
unsupported loop forms, a conservative ``executeUpdate`` for statically
unclassifiable SQL — so the downstream pipeline degrades to coded
``failed`` classifications instead of crashing, exactly as it does for
MiniJava programs outside the paper's fragment.  ``raise`` lowers to a
``return`` of an opaque value: inside a loop that is abnormal control
flow (the loop becomes unanalysable, which is sound), after it the
statements are unreachable, matching Python semantics.

Every lowered node carries the original 1-based ``line``/``col``, so lint
diagnostics and extraction bail-outs point into the Python source.
"""

from __future__ import annotations

import ast
import copy

from ...lang import (
    Assign,
    Binary,
    Block,
    BoolLit,
    Break,
    Call,
    Continue,
    Expr,
    ExprStmt,
    FieldAccess,
    FloatLit,
    ForEach,
    FunctionDef,
    If,
    IntLit,
    MethodCall,
    Name,
    New,
    NullLit,
    Program,
    Return,
    Stmt,
    StringLit,
    Ternary,
    TryCatch,
    Unary,
    While,
    number_statements,
)
from ..base import FrontendError

#: Call name whose resolution always fails, poisoning the value to OPAQUE
#: in the D-IR builder (an unknown function inlines to nothing).
OPAQUE_CALL = "__py_opaque__"


class PythonParseError(FrontendError):
    """The source is not valid Python."""


_BINOPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.Mod: "%",
}

_COMPARES = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.Gt: ">",
    ast.LtE: "<=",
    ast.GtE: ">=",
}

#: Python string-method names → the shared AST method the D-IR builder
#: already maps onto ee-DAG operators (see ir.builder._METHOD_OPS).
_PY_METHODS = {
    "upper": "toUpperCase",
    "lower": "toLowerCase",
    "strip": "trim",
    "startswith": "startsWith",
    "endswith": "endsWith",
    "find": "indexOf",
}

#: Leading SQL keywords that classify an execute() as a read.
_QUERY_KEYWORDS = ("select", "from", "with")

_BUILTIN_COLLECTIONS = {
    "list": "ArrayList",
    "set": "HashSet",
    "dict": "HashMap",
}


def parse_python(source: str) -> Program:
    """Parse Python source and lower every top-level function."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise PythonParseError(
            f"invalid Python: {exc.msg}", exc.lineno or 0, (exc.offset or 1)
        ) from None
    functions = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            functions.append(_FunctionLowering(node).lower())
    program = Program(functions=functions)
    number_statements(program)
    return program


def _pos(node: ast.AST) -> dict:
    """1-based line/col keywords for a lowered node."""
    return {
        "line": getattr(node, "lineno", 0) or 0,
        "col": (getattr(node, "col_offset", -1) or 0) + 1,
    }


class _FunctionLowering:
    """Lowers one ``def`` to a :class:`FunctionDef`, tracking cursors."""

    def __init__(self, node: ast.FunctionDef):
        self.node = node
        #: Variables known to hold DB-API cursors (``conn.cursor()``).
        self.cursors: set[str] = set()
        #: cursor variable → the lowered query-text expression of its most
        #: recent ``execute`` (for the ``fetchone()[0]`` scalar idiom).
        self.last_query: dict[str, Expr] = {}

    def lower(self) -> FunctionDef:
        params = [arg.arg for arg in self.node.args.args]
        body = Block(statements=self._body(self.node.body), **_pos(self.node))
        return FunctionDef(
            name=self.node.name, params=params, body=body, **_pos(self.node)
        )

    # ------------------------------------------------------------------
    # Statements

    def _body(self, stmts: list[ast.stmt]) -> list[Stmt]:
        lowered: list[Stmt] = []
        for stmt in stmts:
            lowered.extend(self._stmt(stmt))
        return lowered

    def _stmt(self, node: ast.stmt) -> list[Stmt]:
        if isinstance(node, ast.Assign):
            out: list[Stmt] = []
            for target in node.targets:
                out.extend(self._assign(target, node.value, node))
            return out
        if isinstance(node, ast.AnnAssign):
            if node.value is None:
                return []
            return self._assign(node.target, node.value, node)
        if isinstance(node, ast.AugAssign):
            return self._aug_assign(node)
        if isinstance(node, ast.Expr):
            return self._expr_stmt(node)
        if isinstance(node, ast.For):
            return self._for(node)
        if isinstance(node, ast.While):
            if node.orelse:
                return [self._opaque_loop(node, node.body)]
            return [
                While(
                    cond=self._expr(node.test),
                    body=self._block(node.body, node),
                    **_pos(node),
                )
            ]
        if isinstance(node, ast.If):
            return [
                If(
                    cond=self._expr(node.test),
                    then_body=self._block(node.body, node),
                    else_body=self._block(node.orelse, node) if node.orelse else None,
                    **_pos(node),
                )
            ]
        if isinstance(node, ast.Return):
            value = self._expr(node.value) if node.value is not None else None
            return [Return(value=value, **_pos(node))]
        if isinstance(node, ast.Break):
            return [Break(**_pos(node))]
        if isinstance(node, ast.Continue):
            return [Continue(**_pos(node))]
        if isinstance(node, ast.Raise):
            # Abnormal exit: a return of an unanalysable value is the
            # sound lowering (abnormal in loops, unreachable-after at top
            # level -- see the module docstring).
            return [Return(value=self._opaque(node), **_pos(node))]
        if isinstance(node, ast.Try):
            return [self._try(node)]
        if isinstance(node, ast.With):
            return self._with(node)
        if isinstance(node, (ast.Import, ast.ImportFrom, ast.Pass, ast.Assert,
                             ast.Global, ast.Nonlocal)):
            return []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested definition binds a name we cannot model.
            return [Assign(target=node.name, value=self._opaque(node), **_pos(node))]
        if isinstance(node, ast.Delete):
            return [
                Assign(target=t.id, value=self._opaque(node), **_pos(node))
                for t in node.targets
                if isinstance(t, ast.Name)
            ]
        # Anything else: poison the names it binds (if recognisable).
        return [
            Assign(target=name, value=self._opaque(node), **_pos(node))
            for name in sorted(_bound_names(node))
        ]

    def _block(self, stmts: list[ast.stmt], owner: ast.stmt) -> Block:
        return Block(statements=self._body(stmts), **_pos(owner))

    # -- assignment ----------------------------------------------------

    def _assign(
        self, target: ast.expr, value: ast.expr, node: ast.stmt
    ) -> list[Stmt]:
        if isinstance(target, ast.Name):
            name = target.id
            if self._is_cursor_factory(value):
                # cur = conn.cursor() -- pure handle creation, no effect.
                self.cursors.add(name)
                return []
            execute = self._match_execute(value)
            if execute is not None:
                kind, query = execute
                self.cursors.add(name)
                if kind == "query":
                    self.last_query[name] = query
                    call = Call(func="executeQuery", args=[query], **_pos(node))
                else:
                    call = Call(func="executeUpdate", args=[query], **_pos(node))
                return [Assign(target=name, value=call, **_pos(node))]
            fetched = self._match_fetchall(value)
            if fetched is not None:
                return [
                    Assign(target=name, value=Name(fetched, **_pos(value)), **_pos(node))
                ]
            return [Assign(target=name, value=self._expr(value), **_pos(node))]
        if isinstance(target, ast.Subscript):
            # d[k] = v  →  d.put(k, v)
            if isinstance(target.value, ast.Name):
                key = self._index_expr(target.slice)
                return [
                    ExprStmt(
                        expr=MethodCall(
                            receiver=Name(target.value.id, **_pos(target)),
                            method="put",
                            args=[key, self._expr(value)],
                            **_pos(node),
                        ),
                        **_pos(node),
                    )
                ]
            return []
        if isinstance(target, ast.Attribute):
            # obj.x = v: entity mutation; the builder poisons the receiver
            # through the bean-setter convention.
            if isinstance(target.value, ast.Name):
                setter = "set" + target.attr[:1].upper() + target.attr[1:]
                return [
                    ExprStmt(
                        expr=MethodCall(
                            receiver=Name(target.value.id, **_pos(target)),
                            method=setter,
                            args=[self._expr(value)],
                            **_pos(node),
                        ),
                        **_pos(node),
                    )
                ]
            return []
        if isinstance(target, (ast.Tuple, ast.List)):
            return [
                Assign(target=e.id, value=self._opaque(node), **_pos(node))
                for e in target.elts
                if isinstance(e, ast.Name)
            ]
        return []

    def _aug_assign(self, node: ast.AugAssign) -> list[Stmt]:
        op = _BINOPS.get(type(node.op))
        if op is None or not isinstance(node.target, ast.Name):
            targets = (
                [node.target.id] if isinstance(node.target, ast.Name) else []
            )
            return [
                Assign(target=t, value=self._opaque(node), **_pos(node))
                for t in targets
            ]
        name = node.target.id
        return [
            Assign(
                target=name,
                value=Binary(
                    op=op,
                    left=Name(name, **_pos(node)),
                    right=self._expr(node.value),
                    **_pos(node),
                ),
                **_pos(node),
            )
        ]

    # -- expression statements -----------------------------------------

    def _expr_stmt(self, node: ast.Expr) -> list[Stmt]:
        value = node.value
        if isinstance(value, ast.Constant):
            return []  # docstring / bare literal
        execute = self._match_execute(value)
        if execute is not None:
            kind, query = execute
            receiver = None
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
                if isinstance(value.func.value, ast.Name):
                    receiver = value.func.value.id
            if kind == "query" and receiver is not None:
                # cur.execute(SELECT...)  →  cur = executeQuery("...")
                self.cursors.add(receiver)
                self.last_query[receiver] = query
                return [
                    Assign(
                        target=receiver,
                        value=Call(func="executeQuery", args=[query], **_pos(node)),
                        **_pos(node),
                    )
                ]
            call_name = "executeUpdate" if kind == "update" else "executeQuery"
            return [
                ExprStmt(
                    expr=Call(func=call_name, args=[query], **_pos(node)),
                    **_pos(node),
                )
            ]
        return [ExprStmt(expr=self._expr(value), **_pos(node))]

    # -- loops ----------------------------------------------------------

    def _for(self, node: ast.For) -> list[Stmt]:
        if not isinstance(node.target, ast.Name) or node.orelse:
            return [self._opaque_loop(node, node.body)]
        iterable = self._iterable(node.iter)
        return [
            ForEach(
                var=node.target.id,
                iterable=iterable,
                body=self._block(node.body, node),
                **_pos(node),
            )
        ]

    def _iterable(self, node: ast.expr) -> Expr:
        """The loop source: a cursor, a fetchall, an inline execute, or
        any other expression (which may well be opaque)."""
        fetched = self._match_fetchall(node)
        if fetched is not None:
            return Name(fetched, **_pos(node))
        execute = self._match_execute(node)
        if execute is not None and execute[0] == "query":
            return Call(func="executeQuery", args=[execute[1]], **_pos(node))
        return self._expr(node)

    def _opaque_loop(self, node: ast.stmt, body: list[ast.stmt]) -> Stmt:
        """An unsupported loop form: a ``while`` over an opaque condition,
        so every variable the body writes is conservatively poisoned."""
        return While(
            cond=self._opaque(node), body=self._block(body, node), **_pos(node)
        )

    # -- other compound statements --------------------------------------

    def _try(self, node: ast.Try) -> Stmt:
        catch_var = None
        catch_stmts: list[Stmt] = []
        for handler in node.handlers:
            if catch_var is None and handler.name:
                catch_var = handler.name
            catch_stmts.extend(self._body(handler.body))
        return TryCatch(
            try_body=self._block(node.body, node),
            catch_var=catch_var,
            catch_body=Block(statements=catch_stmts, **_pos(node))
            if node.handlers
            else None,
            finally_body=self._block(node.finalbody, node)
            if node.finalbody
            else None,
            **_pos(node),
        )

    def _with(self, node: ast.With) -> list[Stmt]:
        """``with`` lowers to its bindings plus the flattened body (no
        exception semantics are modelled, matching TryCatch treatment)."""
        out: list[Stmt] = []
        for item in node.items:
            var = item.optional_vars
            if isinstance(var, ast.Name):
                out.extend(self._assign(var, item.context_expr, node))
            elif var is None and isinstance(item.context_expr, ast.Call):
                out.extend(
                    self._expr_stmt(ast.Expr(value=item.context_expr, **_ast_pos(node)))
                )
        out.extend(self._body(node.body))
        return out

    # ------------------------------------------------------------------
    # DB-API idiom recognition

    def _is_cursor_factory(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "cursor"
            and not node.args
            and not node.keywords
        )

    def _match_execute(self, node: ast.expr) -> tuple[str, Expr] | None:
        """``X.execute(sql[, params])`` → ("query"|"update", query expr)."""
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "execute"
            and node.args
            and not node.keywords
        ):
            return None
        sql = node.args[0]
        kind = self._classify_sql(sql)
        if len(node.args) == 1:
            return kind, self._expr(sql)
        if len(node.args) == 2:
            spliced = self._splice_placeholders(sql, node.args[1])
            if spliced is not None:
                return kind, spliced
        return kind, self._opaque(node)

    def _match_fetchall(self, node: ast.expr) -> str | None:
        """``cur.fetchall()`` → the cursor variable name."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "fetchall"
            and isinstance(node.func.value, ast.Name)
            and not node.args
            and not node.keywords
        ):
            return node.func.value.id
        return None

    def _classify_sql(self, node: ast.expr) -> str:
        """"query" when the statically-known prefix reads; "update"
        otherwise (conservative: an unknown statement may write)."""
        text = None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value
        elif isinstance(node, ast.JoinedStr) and node.values:
            first = node.values[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                text = first.value
        if text is None:
            return "update"
        head = text.lstrip().lower()
        return "query" if head.startswith(_QUERY_KEYWORDS) else "update"

    def _splice_placeholders(
        self, sql: ast.expr, params: ast.expr
    ) -> Expr | None:
        """``execute("... id = ?", (x,))`` → ``"... id = " + x`` so the
        D-IR builder resolves the value as a query parameter."""
        if not (isinstance(sql, ast.Constant) and isinstance(sql.value, str)):
            return None
        if not isinstance(params, (ast.Tuple, ast.List)):
            return None
        text = sql.value
        marker = "?" if "?" in text else "%s" if "%s" in text else None
        if marker is None:
            return None
        pieces = text.split(marker)
        if len(pieces) != len(params.elts) + 1:
            return None
        expr: Expr = StringLit(pieces[0], **_pos(sql))
        for piece, param in zip(pieces[1:], params.elts):
            expr = Binary(op="+", left=expr, right=self._expr(param), **_pos(sql))
            if piece:
                expr = Binary(
                    op="+", left=expr, right=StringLit(piece, **_pos(sql)), **_pos(sql)
                )
        return expr

    def _match_scalar_fetch(self, node: ast.expr) -> Expr | None:
        """``cur.fetchone()[0]`` → ``executeScalar(<last query>)``."""
        if not isinstance(node, ast.Subscript):
            return None
        index = node.slice
        if isinstance(index, ast.Index):  # pragma: no cover (py<3.9 shape)
            index = index.value
        if not (isinstance(index, ast.Constant) and index.value == 0):
            return None
        call = node.value
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "fetchone"
            and isinstance(call.func.value, ast.Name)
        ):
            return None
        query = self.last_query.get(call.func.value.id)
        if query is None:
            return None
        return Call(func="executeScalar", args=[copy.deepcopy(query)], **_pos(node))

    # ------------------------------------------------------------------
    # Expressions

    def _opaque(self, node: ast.AST) -> Expr:
        return Call(func=OPAQUE_CALL, args=[], **_pos(node))

    def _expr(self, node: ast.expr) -> Expr:
        if isinstance(node, ast.Constant):
            return self._constant(node)
        if isinstance(node, ast.Name):
            return Name(node.id, **_pos(node))
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                return self._opaque(node)
            return Binary(
                op=op,
                left=self._expr(node.left),
                right=self._expr(node.right),
                **_pos(node),
            )
        if isinstance(node, ast.BoolOp):
            op = "&&" if isinstance(node.op, ast.And) else "||"
            expr = self._expr(node.values[0])
            for value in node.values[1:]:
                expr = Binary(op=op, left=expr, right=self._expr(value), **_pos(node))
            return expr
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return Unary(op="!", operand=self._expr(node.operand), **_pos(node))
            if isinstance(node.op, ast.USub):
                return Unary(op="-", operand=self._expr(node.operand), **_pos(node))
            return self._opaque(node)
        if isinstance(node, ast.IfExp):
            return Ternary(
                cond=self._expr(node.test),
                if_true=self._expr(node.body),
                if_false=self._expr(node.orelse),
                **_pos(node),
            )
        if isinstance(node, ast.Attribute):
            return FieldAccess(
                receiver=self._expr(node.value), field=node.attr, **_pos(node)
            )
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.JoinedStr):
            return self._fstring(node)
        if isinstance(node, ast.List) and not node.elts:
            return New(class_name="ArrayList", args=[], **_pos(node))
        if isinstance(node, ast.Dict) and not node.keys:
            return New(class_name="HashMap", args=[], **_pos(node))
        if isinstance(node, ast.Tuple):
            return New(
                class_name="Tuple",
                args=[self._expr(e) for e in node.elts],
                **_pos(node),
            )
        return self._opaque(node)

    def _constant(self, node: ast.Constant) -> Expr:
        value = node.value
        if value is None:
            return NullLit(**_pos(node))
        if isinstance(value, bool):
            return BoolLit(value, **_pos(node))
        if isinstance(value, int):
            return IntLit(value, **_pos(node))
        if isinstance(value, float):
            return FloatLit(value, **_pos(node))
        if isinstance(value, str):
            return StringLit(value, **_pos(node))
        return self._opaque(node)

    def _compare(self, node: ast.Compare) -> Expr:
        if len(node.ops) != 1:
            return self._opaque(node)  # chained comparisons are out of subset
        op_node, right = node.ops[0], node.comparators[0]
        left = node.left
        if isinstance(op_node, (ast.Is, ast.IsNot)):
            # Only the `is [not] None` identity form maps onto SQL equality.
            if not (isinstance(right, ast.Constant) and right.value is None):
                return self._opaque(node)
            op = "==" if isinstance(op_node, ast.Is) else "!="
            return Binary(
                op=op,
                left=self._expr(left),
                right=NullLit(**_pos(right)),
                **_pos(node),
            )
        if isinstance(op_node, (ast.In, ast.NotIn)):
            # `x in s` → s.contains(x); the builder maps it to the
            # string-containment operator.
            contains = MethodCall(
                receiver=self._expr(right),
                method="contains",
                args=[self._expr(left)],
                **_pos(node),
            )
            if isinstance(op_node, ast.NotIn):
                return Unary(op="!", operand=contains, **_pos(node))
            return contains
        op = _COMPARES.get(type(op_node))
        if op is None:
            return self._opaque(node)
        return Binary(
            op=op, left=self._expr(left), right=self._expr(right), **_pos(node)
        )

    def _subscript(self, node: ast.Subscript) -> Expr:
        scalar = self._match_scalar_fetch(node)
        if scalar is not None:
            return scalar
        index = node.slice
        if isinstance(index, ast.Index):  # pragma: no cover (py<3.9 shape)
            index = index.value
        if isinstance(index, ast.Constant) and isinstance(index.value, str):
            # row["name"] → row.name
            return FieldAccess(
                receiver=self._expr(node.value), field=index.value, **_pos(node)
            )
        return self._opaque(node)

    def _call(self, node: ast.Call) -> Expr:
        if node.keywords:
            return self._opaque(node)
        args = node.args
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in ("max", "min") and len(args) == 2:
                return MethodCall(
                    receiver=Name("Math", **_pos(node)),
                    method=name,
                    args=[self._expr(a) for a in args],
                    **_pos(node),
                )
            if name == "abs" and len(args) == 1:
                return MethodCall(
                    receiver=Name("Math", **_pos(node)),
                    method="abs",
                    args=[self._expr(args[0])],
                    **_pos(node),
                )
            if name == "int" and len(args) == 1:
                return MethodCall(
                    receiver=Name("Integer", **_pos(node)),
                    method="parseInt",
                    args=[self._expr(args[0])],
                    **_pos(node),
                )
            if name == "float" and len(args) == 1:
                return MethodCall(
                    receiver=Name("Double", **_pos(node)),
                    method="parseDouble",
                    args=[self._expr(args[0])],
                    **_pos(node),
                )
            if name == "len" and len(args) == 1:
                return MethodCall(
                    receiver=self._expr(args[0]), method="size", args=[], **_pos(node)
                )
            if name == "str" and len(args) == 1:
                return MethodCall(
                    receiver=self._expr(args[0]),
                    method="toString",
                    args=[],
                    **_pos(node),
                )
            if name in _BUILTIN_COLLECTIONS and not args:
                return New(
                    class_name=_BUILTIN_COLLECTIONS[name], args=[], **_pos(node)
                )
            if name == "print":
                return Call(
                    func="print", args=[self._expr(a) for a in args], **_pos(node)
                )
            if name == OPAQUE_CALL:
                return self._opaque(node)
            # A user-defined function: the D-IR builder inlines it when it
            # exists in the program, and poisons the value otherwise.
            return Call(
                func=name, args=[self._expr(a) for a in args], **_pos(node)
            )
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            fetched = self._match_fetchall(node)
            if fetched is not None:
                return Name(fetched, **_pos(node))
            execute = self._match_execute(node)
            if execute is not None and execute[0] == "query":
                return Call(func="executeQuery", args=[execute[1]], **_pos(node))
            if method == "get" and len(args) == 1:
                key = args[0]
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    # row.get("name") → row.name
                    return FieldAccess(
                        receiver=self._expr(node.func.value),
                        field=key.value,
                        **_pos(node),
                    )
                return self._opaque(node)
            mapped = _PY_METHODS.get(method, method)
            return MethodCall(
                receiver=self._expr(node.func.value),
                method=mapped,
                args=[self._expr(a) for a in args],
                **_pos(node),
            )
        return self._opaque(node)

    def _fstring(self, node: ast.JoinedStr) -> Expr:
        pieces: list[Expr] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                pieces.append(StringLit(value.value, **_pos(node)))
            elif isinstance(value, ast.FormattedValue):
                if value.format_spec is not None or value.conversion not in (-1, 115):
                    pieces.append(self._opaque(value))
                else:
                    pieces.append(self._expr(value.value))
            else:
                pieces.append(self._opaque(value))
        if not pieces:
            return StringLit("", **_pos(node))
        expr = pieces[0]
        for piece in pieces[1:]:
            expr = Binary(op="+", left=expr, right=piece, **_pos(node))
        return expr

    def _index_expr(self, index: ast.expr) -> Expr:
        if isinstance(index, ast.Index):  # pragma: no cover (py<3.9 shape)
            index = index.value
        return self._expr(index)


def _ast_pos(node: ast.AST) -> dict:
    """Source position keywords for synthesising raw ``ast`` nodes."""
    return {
        "lineno": getattr(node, "lineno", 1),
        "col_offset": getattr(node, "col_offset", 0),
    }


def _bound_names(node: ast.stmt) -> set[str]:
    """Names a statement assigns, for conservative poisoning."""
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
            names.add(child.id)
    return names
