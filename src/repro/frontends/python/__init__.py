"""Python DB-API frontend: ``ast``-based lowering to the shared AST."""

from .frontend import PythonFrontend
from .lower import OPAQUE_CALL, PythonParseError, parse_python
from .unparser import unparse_python_function, unparse_python_program

__all__ = [
    "OPAQUE_CALL",
    "PythonFrontend",
    "PythonParseError",
    "parse_python",
    "unparse_python_function",
    "unparse_python_program",
]
