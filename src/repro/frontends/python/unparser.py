"""Render the shared surface AST as Python source.

The inverse direction of :mod:`.lower`, used to print rewritten programs
in the frontend's own syntax (``python -m repro extract --rewrite``).
Canonical query calls stay as ``executeQuery("...")`` — the rewritten
program is the paper's Section 5.2 artifact, where the call form *is* the
interface to the database layer — but control flow, collection idioms and
literals render as idiomatic Python (``for x in q:``, ``acc.append(v)``,
``None``/``True``/``False``).
"""

from __future__ import annotations

from ...lang import (
    Assign,
    Binary,
    Block,
    BoolLit,
    Break,
    Call,
    Continue,
    Expr,
    ExprStmt,
    FieldAccess,
    FloatLit,
    ForEach,
    FunctionDef,
    If,
    IntLit,
    MethodCall,
    Name,
    New,
    NullLit,
    Program,
    Return,
    Stmt,
    StringLit,
    Ternary,
    TryCatch,
    Unary,
    While,
)

_INDENT = "    "

_BINOPS = {"&&": "and", "||": "or"}

#: Shared-AST method names → Python renderings.
_METHODS = {
    "add": "append",
    "append": "append",
    "toUpperCase": "upper",
    "toLowerCase": "lower",
    "trim": "strip",
    "startsWith": "startswith",
    "endsWith": "endswith",
    "indexOf": "find",
}

_EMPTY_NEW = {
    "ArrayList": "[]",
    "LinkedList": "[]",
    "List": "[]",
    "Vector": "[]",
    "HashSet": "set()",
    "TreeSet": "set()",
    "Set": "set()",
    "LinkedHashSet": "set()",
    "HashMap": "{}",
    "TreeMap": "{}",
    "Map": "{}",
    "LinkedHashMap": "{}",
}


def unparse_python_program(program: Program) -> str:
    return "\n\n".join(unparse_python_function(f) for f in program.functions)


def unparse_python_function(func: FunctionDef) -> str:
    lines = [f"def {func.name}({', '.join(func.params)}):"]
    body = _stmt_lines(func.body, 1)
    lines.extend(body if body else [f"{_INDENT}pass"])
    return "\n".join(lines)


def _block_lines(block: Block | None, depth: int) -> list[str]:
    if block is None or not block.statements:
        return [f"{_INDENT * depth}pass"]
    lines: list[str] = []
    for stmt in block.statements:
        lines.extend(_stmt_lines(stmt, depth))
    return lines if lines else [f"{_INDENT * depth}pass"]


def _stmt_lines(stmt: Stmt, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(stmt, Block):
        lines: list[str] = []
        for child in stmt.statements:
            lines.extend(_stmt_lines(child, depth))
        return lines
    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.target} = {_expr(stmt.value)}"]
    if isinstance(stmt, ExprStmt):
        expr = stmt.expr
        if isinstance(expr, MethodCall) and expr.method == "put" and len(expr.args) == 2:
            receiver = _expr(expr.receiver, 2)
            return [f"{pad}{receiver}[{_expr(expr.args[0])}] = {_expr(expr.args[1])}"]
        return [f"{pad}{_expr(stmt.expr)}"]
    if isinstance(stmt, If):
        lines = [f"{pad}if {_expr(stmt.cond)}:"]
        lines.extend(_block_lines(stmt.then_body, depth + 1))
        if stmt.else_body is not None:
            lines.append(f"{pad}else:")
            lines.extend(_block_lines(stmt.else_body, depth + 1))
        return lines
    if isinstance(stmt, ForEach):
        lines = [f"{pad}for {stmt.var} in {_expr(stmt.iterable)}:"]
        lines.extend(_block_lines(stmt.body, depth + 1))
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while {_expr(stmt.cond)}:"]
        lines.extend(_block_lines(stmt.body, depth + 1))
        return lines
    if isinstance(stmt, Return):
        if stmt.value is None:
            return [f"{pad}return"]
        return [f"{pad}return {_expr(stmt.value)}"]
    if isinstance(stmt, Break):
        return [f"{pad}break"]
    if isinstance(stmt, Continue):
        return [f"{pad}continue"]
    if isinstance(stmt, TryCatch):
        lines = [f"{pad}try:"]
        lines.extend(_block_lines(stmt.try_body, depth + 1))
        if stmt.catch_body is not None:
            catch = f" as {stmt.catch_var}" if stmt.catch_var else ""
            lines.append(f"{pad}except Exception{catch}:")
            lines.extend(_block_lines(stmt.catch_body, depth + 1))
        if stmt.finally_body is not None:
            lines.append(f"{pad}finally:")
            lines.extend(_block_lines(stmt.finally_body, depth + 1))
        return lines
    raise TypeError(f"cannot render {type(stmt).__name__} as Python")


def _expr(expr: Expr, parent_prec: int = 0) -> str:
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, FloatLit):
        return repr(expr.value)
    if isinstance(expr, StringLit):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(expr, BoolLit):
        return "True" if expr.value else "False"
    if isinstance(expr, NullLit):
        return "None"
    if isinstance(expr, Name):
        return expr.ident
    if isinstance(expr, Binary):
        op = _BINOPS.get(expr.op, expr.op)
        left = _expr(expr.left, 1)
        right = _expr(expr.right, 2)
        text = f"{left} {op} {right}"
        return f"({text})" if parent_prec else text
    if isinstance(expr, Unary):
        if expr.op == "!":
            return f"not {_expr(expr.operand, 2)}"
        return f"-{_expr(expr.operand, 2)}"
    if isinstance(expr, Ternary):
        return (
            f"({_expr(expr.if_true)} if {_expr(expr.cond)} "
            f"else {_expr(expr.if_false)})"
        )
    if isinstance(expr, Call):
        args = ", ".join(_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, MethodCall):
        receiver = _expr(expr.receiver, 2)
        args = [_expr(a) for a in expr.args]
        if isinstance(expr.receiver, Name) and expr.receiver.ident == "Math":
            if expr.method in ("max", "min", "abs"):
                return f"{expr.method}({', '.join(args)})"
        if expr.method in ("size", "length") and not args:
            return f"len({receiver})"
        method = _METHODS.get(expr.method, expr.method)
        return f"{receiver}.{method}({', '.join(args)})"
    if isinstance(expr, FieldAccess):
        return f'{_expr(expr.receiver, 2)}["{expr.field}"]'
    if isinstance(expr, New):
        rendered = _EMPTY_NEW.get(expr.class_name)
        if rendered is not None and not expr.args:
            return rendered
        if expr.class_name in ("Pair", "Tuple"):
            return f"({', '.join(_expr(a) for a in expr.args)})"
        args = ", ".join(_expr(a) for a in expr.args)
        return f"{expr.class_name}({args})"
    raise TypeError(f"cannot render {type(expr).__name__} as Python")
