"""Costing the rewrite space under a deployment profile (Appendix C, Cobra).

:class:`AlternativeCostModel` extends the Volcano :class:`~repro.cost.CostModel`
with profile-supplied cardinalities/selectivities and per-alternative
analytical formulas.  Every formula decomposes into four components so the
``explain`` output can show *why* a winner won:

``round_trip_ms``  serial network round trips × profile latency — linear in
                   ``round_trip_ms`` with the round-trip count as slope,
                   which is what makes selection provably monotone in
                   network latency (the property test pins this);
``transfer_ms``    result/parameter bytes over the wire;
``server_ms``      scan and materialisation work at the database;
``client_ms``      application-side iteration, hashing and probing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra import RelExpr, Select, Table
from ..cost import CostModel, Estimate
from .alternatives import (
    KIND_AS_WRITTEN,
    KIND_BATCHED,
    KIND_HYBRID,
    KIND_PREFETCH,
    KIND_PUSHDOWN,
    Alternative,
    Site,
)
from .profile import DeploymentProfile

#: Transferred bytes per shipped batch key (one scalar per row).
KEY_BYTES = 8.0


@dataclass(frozen=True)
class CostBreakdown:
    """Component-wise estimated cost of one alternative, in simulated ms."""

    round_trips: float
    round_trip_ms: float
    transfer_ms: float
    server_ms: float
    client_ms: float

    @property
    def total_ms(self) -> float:
        return self.round_trip_ms + self.transfer_ms + self.server_ms + self.client_ms

    def to_dict(self) -> dict:
        return {
            "round_trips": round(self.round_trips, 4),
            "round_trip_ms": round(self.round_trip_ms, 4),
            "transfer_ms": round(self.transfer_ms, 4),
            "server_ms": round(self.server_ms, 4),
            "client_ms": round(self.client_ms, 4),
            "total_ms": round(self.total_ms, 4),
        }


class AlternativeCostModel(CostModel):
    """The Volcano cost model, parameterised by a deployment profile.

    Table cardinalities come from the live database when one is supplied,
    else from the profile's ``table_rows``/``default_table_rows``; the
    selection selectivity comes from the profile instead of the module
    constant.  Passing a :class:`~repro.db.CardinalityEstimator` upgrades
    selection selectivities from the profile's flat constant to
    statistics-driven estimates (NDV, histograms) against the live data.
    """

    def __init__(self, profile: DeploymentProfile, database=None, estimator=None):
        super().__init__(database, profile.cost_parameters())
        self.profile = profile
        self.estimator = estimator

    def cardinality(self, rel: RelExpr) -> Estimate:
        if isinstance(rel, Table):
            if self.database is not None and rel.name.lower() in {
                t.lower() for t in self.database.table_names()
            }:
                return Estimate(
                    rows=float(len(self.database.rows(rel.name))),
                    width_bytes=self.profile.row_bytes,
                )
            return Estimate(
                rows=self.profile.cardinality(rel.name),
                width_bytes=self.profile.row_bytes,
            )
        if isinstance(rel, Select):
            child = self.cardinality(rel.child)
            selectivity = self.profile.selectivity
            if self.estimator is not None:
                observed = self.estimator.select_selectivity(rel)
                if observed is not None:
                    selectivity = observed
            return Estimate(
                rows=child.rows * selectivity,
                width_bytes=child.width_bytes,
            )
        return super().cardinality(rel)

    # ------------------------------------------------------------------

    def table_rows(self, table: str) -> float:
        if self.database is not None and table.lower() in {
            t.lower() for t in self.database.table_names()
        }:
            return float(len(self.database.rows(table)))
        return self.profile.cardinality(table)

    def _query_parts(self, rel: RelExpr) -> tuple[float, float, float]:
        """(server_ms, transfer_ms, result_rows) of one query execution."""
        estimate = self.cardinality(rel)
        scanned = self.scanned_rows(rel)
        server = (
            scanned * self.cost.per_scanned_row_ms
            + estimate.rows * self.cost.per_result_row_ms
        )
        transfer = estimate.rows * estimate.width_bytes / self.cost.bytes_per_ms
        return server, transfer, estimate.rows

    def _outer_parts(self, site: Site) -> tuple[float, float, float]:
        if site.outer_rel is not None:
            return self._query_parts(site.outer_rel)
        rows = self.profile.default_table_rows
        server = rows * (self.cost.per_scanned_row_ms + self.cost.per_result_row_ms)
        transfer = rows * self.profile.row_bytes / self.cost.bytes_per_ms
        return server, transfer, rows

    # ------------------------------------------------------------------
    # Per-alternative formulas

    def breakdown(self, site: Site, alternative: Alternative) -> CostBreakdown:
        kind = alternative.kind
        if kind == KIND_AS_WRITTEN:
            return self._cost_as_written(site)
        if kind == KIND_PUSHDOWN:
            return self._cost_pushdown(site, alternative)
        if kind == KIND_HYBRID:
            base = self._cost_as_written(site)
            push = self._cost_pushdown(site, alternative)
            return CostBreakdown(
                round_trips=base.round_trips + push.round_trips,
                round_trip_ms=base.round_trip_ms + push.round_trip_ms,
                transfer_ms=base.transfer_ms + push.transfer_ms,
                server_ms=base.server_ms + push.server_ms,
                client_ms=base.client_ms + push.client_ms,
            )
        if kind == KIND_BATCHED:
            return self._cost_lookup_rewrite(site, prefetch=False)
        if kind == KIND_PREFETCH:
            return self._cost_lookup_rewrite(site, prefetch=True)
        raise ValueError(f"unknown alternative kind {kind!r}")

    def _cost_as_written(self, site: Site) -> CostBreakdown:
        outer_server, outer_transfer, outer_rows = self._outer_parts(site)
        inner_count = len(site.inner_lookups) + site.residual_inner_queries
        round_trips = 1.0 + outer_rows * inner_count

        server = outer_server
        transfer = outer_transfer
        for lookup in site.inner_lookups:
            probe_scan = self.table_rows(lookup.table)
            server += outer_rows * (
                probe_scan * self.cost.per_scanned_row_ms
                + self.cost.per_result_row_ms
            )
            transfer += outer_rows * KEY_BYTES / self.cost.bytes_per_ms
        if site.residual_inner_queries:
            probe_scan = self.profile.default_table_rows
            server += outer_rows * site.residual_inner_queries * (
                probe_scan * self.cost.per_scanned_row_ms
                + self.cost.per_result_row_ms
            )
            transfer += (
                outer_rows * site.residual_inner_queries
                * KEY_BYTES / self.cost.bytes_per_ms
            )
        server += round_trips * self.cost.per_query_overhead_ms
        client = outer_rows * self.profile.client_row_ms
        return CostBreakdown(
            round_trips=round_trips,
            round_trip_ms=round_trips * self.cost.round_trip_ms,
            transfer_ms=transfer,
            server_ms=server,
            client_ms=client,
        )

    def _cost_pushdown(self, site: Site, alternative: Alternative) -> CostBreakdown:
        round_trips = float(len(alternative.extracted_rels))
        server = round_trips * self.cost.per_query_overhead_ms
        transfer = 0.0
        client = 0.0
        for rel in alternative.extracted_rels:
            rel_server, rel_transfer, rel_rows = self._query_parts(rel)
            server += rel_server
            transfer += rel_transfer
            client += rel_rows * self.profile.client_row_ms
        return CostBreakdown(
            round_trips=round_trips,
            round_trip_ms=round_trips * self.cost.round_trip_ms,
            transfer_ms=transfer,
            server_ms=server,
            client_ms=client,
        )

    def _cost_lookup_rewrite(self, site: Site, *, prefetch: bool) -> CostBreakdown:
        outer_server, outer_transfer, outer_rows = self._outer_parts(site)
        per_lookup_trips = 1.0 if prefetch else 2.0
        round_trips = (
            1.0
            + per_lookup_trips * len(site.inner_lookups)
            + outer_rows * site.residual_inner_queries
        )

        server = outer_server
        transfer = outer_transfer
        client = outer_rows * self.profile.client_row_ms
        for lookup in site.inner_lookups:
            inner_rows = self.table_rows(lookup.table)
            fetched = inner_rows if prefetch else min(outer_rows, inner_rows)
            server += (
                inner_rows * self.cost.per_scanned_row_ms
                + fetched * self.cost.per_result_row_ms
            )
            transfer += fetched * self.profile.row_bytes / self.cost.bytes_per_ms
            if not prefetch:
                # Shipping the key batch: server scans it during the join,
                # the wire carries one key per outer row.
                server += outer_rows * self.cost.per_scanned_row_ms
                transfer += outer_rows * KEY_BYTES / self.cost.bytes_per_ms
                client += outer_rows * self.profile.client_row_ms
            # Building and probing the HashMap.
            client += (fetched + outer_rows) * self.profile.client_row_ms
        if site.residual_inner_queries:
            probe_scan = self.profile.default_table_rows
            server += outer_rows * site.residual_inner_queries * (
                probe_scan * self.cost.per_scanned_row_ms
                + self.cost.per_result_row_ms
            )
        server += round_trips * self.cost.per_query_overhead_ms
        return CostBreakdown(
            round_trips=round_trips,
            round_trip_ms=round_trips * self.cost.round_trip_ms,
            transfer_ms=transfer,
            server_ms=server,
            client_ms=client,
        )
