"""Cost-based rewrite selection over the full alternative space (Cobra).

The extraction pipeline (:mod:`repro.core`) commits to one rewrite per
site; this package instead treats each site as a *space* of equivalent
implementations, costs every member under a :class:`DeploymentProfile`,
and selects a per-site winner with an explain-style justification:

* :mod:`~repro.rewrites.profile` — deployment profiles (``local``/``wan``
  built-ins, a registry for custom ones);
* :mod:`~repro.rewrites.alternatives` — the generator: as-written,
  push-down, batched, prefetch, hybrid, each a runnable program;
* :mod:`~repro.rewrites.cost` — the profile-parameterised cost model
  with per-component breakdowns;
* :mod:`~repro.rewrites.selector` — ``plan_rewrites``: generate, cost,
  select, justify;
* :mod:`~repro.rewrites.explain` — deterministic text rendering
  (``--explain-rewrites``);
* :mod:`~repro.rewrites.verify` — execute every alternative and compare
  it to the as-written program (wired into the difftest oracle as the
  ``alternative-diverged`` verdict).
"""

from .alternatives import (
    KIND_AS_WRITTEN,
    KIND_BATCHED,
    KIND_HYBRID,
    KIND_PREFETCH,
    KIND_PUSHDOWN,
    Alternative,
    InnerLookup,
    Site,
    generate_alternatives,
)
from .cost import AlternativeCostModel, CostBreakdown
from .explain import render_explain
from .profile import (
    PROFILES,
    DeploymentProfile,
    get_profile,
    register_profile,
)
from .selector import (
    CostedAlternative,
    RewritePlan,
    SiteChoice,
    plan_rewrites,
    select_alternative,
)
from .verify import AlternativeCheck, run_observables, seed_database, verify_alternatives

__all__ = [
    "KIND_AS_WRITTEN",
    "KIND_BATCHED",
    "KIND_HYBRID",
    "KIND_PREFETCH",
    "KIND_PUSHDOWN",
    "Alternative",
    "AlternativeCheck",
    "AlternativeCostModel",
    "CostBreakdown",
    "CostedAlternative",
    "DeploymentProfile",
    "InnerLookup",
    "PROFILES",
    "RewritePlan",
    "Site",
    "SiteChoice",
    "generate_alternatives",
    "get_profile",
    "plan_rewrites",
    "register_profile",
    "render_explain",
    "run_observables",
    "seed_database",
    "select_alternative",
    "verify_alternatives",
]
