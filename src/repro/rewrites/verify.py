"""Execute-and-compare verification of a site's whole rewrite space.

Costing says which alternative is *fastest*; this module checks the far
stronger claim that every member is *equivalent*: each alternative
program runs against a fresh database instance and must produce the same
return value, printed output and ``__out__`` stream as the as-written
program (the difftest oracle's comparison, reused verbatim).  The
difftest oracle calls into :func:`verify_alternatives` so fuzzing covers
the generator too, with the dedicated failing verdict kind
``alternative-diverged``.
"""

from __future__ import annotations

import random
import traceback
from dataclasses import dataclass
from typing import Any, Callable

from ..algebra import Catalog
from ..db import Connection, Database, EngineDivergenceError
from ..interp import Interpreter
from .alternatives import Site
from .profile import DeploymentProfile


@dataclass
class AlternativeCheck:
    """Outcome of executing one alternative against the as-written run."""

    loop_sid: int
    kind: str
    equivalent: bool
    detail: str = ""
    round_trips: int = 0
    simulated_time_ms: float = 0.0
    engine_divergence: bool = False


def seed_database(
    catalog: Catalog,
    rows_per_table: int = 30,
    seed: int = 0,
    engine: str = "both",
) -> Database:
    """A deterministic instance for a catalog: unique keys, aligned ranges.

    Key columns get a shuffled permutation of ``1..n`` (declared keys stay
    unique); every other column draws small integers from ``0..5`` so
    same-named columns across tables overlap (joins and point lookups hit).
    """
    rng = random.Random(seed)
    database = Database(catalog, default_engine=engine)
    for table in catalog.tables.values():
        key_values = list(range(1, rows_per_table + 1))
        rng.shuffle(key_values)
        rows = []
        for index in range(rows_per_table):
            row: dict = {}
            for column in table.columns:
                if column.name in table.key:
                    row[column.name] = key_values[index]
                else:
                    row[column.name] = rng.randint(0, 5)
            rows.append(row)
        database.insert_many(table.name, rows)
    return database


def run_observables(
    program,
    function: str,
    database: Database,
    args: tuple = (),
    profile: DeploymentProfile | None = None,
) -> tuple[Any, list[str], Any, Any]:
    """Run and collect everything the oracle compares.

    Returns ``(result, printed_output, out_stream, connection_stats)``.
    """
    cost = profile.cost_parameters() if profile is not None else None
    connection = Connection(database, cost=cost)
    interpreter = Interpreter(program, connection)
    result = interpreter.run(function, *args)
    return result, interpreter.output, interpreter.last_out, connection.stats


def verify_alternatives(
    sites: list[Site],
    function: str,
    database_factory: Callable[[], Database],
    args: tuple = (),
    profile: DeploymentProfile | None = None,
) -> list[AlternativeCheck]:
    """Run every non-identity alternative of every site; compare to as-written.

    ``database_factory`` must return a *fresh* instance per call so runs
    cannot observe each other's side effects (temp tables).  The identity
    (as-written) member is the baseline, executed once per site.
    """
    from ..difftest.oracle import normalize  # function-level: avoids a cycle

    checks: list[AlternativeCheck] = []
    for site in sites:
        baseline = site.alternative("as-written")
        if baseline is None or len(site.alternatives) < 2:
            continue
        try:
            expected, expected_output, expected_out, _ = run_observables(
                baseline.program, function, database_factory(), args, profile
            )
        except Exception:
            # The program itself fails on this instance; nothing to compare.
            continue
        for alternative in site.alternatives:
            if alternative.identity:
                continue
            check = AlternativeCheck(loop_sid=site.loop_sid, kind=alternative.kind,
                                     equivalent=False)
            try:
                result, output, out_stream, stats = run_observables(
                    alternative.program, function, database_factory(), args, profile
                )
            except EngineDivergenceError:
                check.detail = (
                    f"planned vs reference engines disagree running the "
                    f"{alternative.kind} alternative:\n{traceback.format_exc()}"
                )
                check.engine_divergence = True
                checks.append(check)
                continue
            except Exception:
                check.detail = (
                    f"{alternative.kind} alternative raised "
                    f"(as-written succeeded):\n{traceback.format_exc()}"
                )
                checks.append(check)
                continue
            check.round_trips = stats.round_trips
            check.simulated_time_ms = stats.simulated_time_ms
            mismatches = []
            if normalize(result) != normalize(expected):
                mismatches.append(
                    f"return value: as-written={normalize(expected)!r} "
                    f"{alternative.kind}={normalize(result)!r}"
                )
            if output != expected_output:
                mismatches.append(
                    f"printed output: as-written={expected_output!r} "
                    f"{alternative.kind}={output!r}"
                )
            if normalize(out_stream) != normalize(expected_out):
                mismatches.append(
                    f"__out__ stream: as-written={normalize(expected_out)!r} "
                    f"{alternative.kind}={normalize(out_stream)!r}"
                )
            if mismatches:
                check.detail = "; ".join(mismatches)
            else:
                check.equivalent = True
            checks.append(check)
    return checks
