"""Per-site winner selection over the rewrite space.

``plan_rewrites`` is the top of the tentpole: generate the space
(:mod:`repro.rewrites.alternatives`), cost every member under a
deployment profile (:mod:`repro.rewrites.cost`), and pick the cheapest
per site, recording an explain-style justification that names the
runner-up and the cost delta.  Ties break toward the more declarative
kind (push-down first, as-written last), so profiles with degenerate
costs still select deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra import Catalog
from .alternatives import Alternative, Site, generate_alternatives
from .cost import AlternativeCostModel, CostBreakdown
from .profile import DeploymentProfile, get_profile

#: Tie-break order: prefer pushing work to the database.
KIND_PREFERENCE = {
    "pushdown": 0,
    "batched": 1,
    "prefetch": 2,
    "hybrid": 3,
    "as-written": 4,
}


@dataclass
class CostedAlternative:
    alternative: Alternative
    cost: CostBreakdown

    @property
    def kind(self) -> str:
        return self.alternative.kind

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "description": self.alternative.description,
            "cost_ms": self.cost.to_dict(),
        }


@dataclass
class SiteChoice:
    """One site's costed space and the selected winner."""

    site: Site
    costed: list[CostedAlternative]
    chosen: CostedAlternative
    why: str

    def to_dict(self) -> dict:
        return {
            "loop_sid": self.site.loop_sid,
            "variables": list(self.site.variables),
            "chosen": self.chosen.kind,
            "why": self.why,
            "alternatives": [c.to_dict() for c in self.costed],
        }


@dataclass
class RewritePlan:
    """The selector's output for one function under one profile."""

    profile: DeploymentProfile
    function: str
    choices: list[SiteChoice] = field(default_factory=list)

    def choice_for(self, loop_sid: int) -> SiteChoice | None:
        for choice in self.choices:
            if choice.site.loop_sid == loop_sid:
                return choice
        return None

    def to_dict(self) -> dict:
        return {
            "profile": self.profile.name,
            "function": self.function,
            "sites": [choice.to_dict() for choice in self.choices],
        }


def select_alternative(
    site: Site, model: AlternativeCostModel
) -> SiteChoice:
    """Cost every member of ``site``'s space and pick the winner."""
    costed = [
        CostedAlternative(alternative=alt, cost=model.breakdown(site, alt))
        for alt in site.alternatives
    ]
    costed.sort(
        key=lambda c: (c.cost.total_ms, KIND_PREFERENCE.get(c.kind, 99))
    )
    chosen = costed[0]
    if len(costed) == 1:
        why = f"{chosen.kind} is the only alternative for this site"
    else:
        runner_up = costed[1]
        delta = runner_up.cost.total_ms - chosen.cost.total_ms
        trip_delta = runner_up.cost.round_trips - chosen.cost.round_trips
        why = (
            f"{chosen.kind} wins at {chosen.cost.total_ms:.3f} ms estimated; "
            f"runner-up {runner_up.kind} costs {runner_up.cost.total_ms:.3f} ms "
            f"(+{delta:.3f} ms, {trip_delta:+.0f} round trips)"
        )
    return SiteChoice(site=site, costed=costed, chosen=chosen, why=why)


def plan_rewrites(
    report,
    catalog: Catalog,
    profile: str | DeploymentProfile,
    database=None,
    dialect: str = "repro",
) -> RewritePlan:
    """Generate, cost and select: the full Cobra pass for one report."""
    resolved = get_profile(profile)
    model = AlternativeCostModel(resolved, database)
    sites = generate_alternatives(report, catalog, dialect)
    plan = RewritePlan(profile=resolved, function=report.function)
    for site in sites:
        plan.choices.append(select_alternative(site, model))
    return plan
