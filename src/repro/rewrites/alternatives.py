"""Per-extraction-site alternative generation (the Cobra rewrite space).

For every loop the extractor analysed, this module produces the *space* of
equivalent implementations instead of the single rewrite
``optimize_program`` commits to:

``as-written``  the original imperative loop, kept verbatim (always in the
                space — it is the baseline every other member is verified
                against);
``pushdown``    full SQL push-down: the Section 5.2 rewrite of this one
                site (insert extractions, then dead-code elimination);
``batched``     Guravannavar-style parameter batching of an N+1 loop: ship
                the outer keys as a temporary table, fetch all inner rows
                in one join query, and probe a client-side HashMap inside
                the loop;
``prefetch``    fetch the whole inner table up front and join in the
                application — fewer round trips than ``batched``, more
                transfer;
``hybrid``      partial extraction when only some of the loop's variables
                extracted: push the successful ones, keep the residual
                loop for the rest.

Every alternative is a complete, runnable :class:`~repro.lang.Program`,
which is what lets the difftest oracle execute each one against the
as-written program (see :mod:`repro.rewrites.verify`).  Generation is
profile-independent; costing and selection live in
:mod:`repro.rewrites.cost` / :mod:`repro.rewrites.selector`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..algebra import BinOp, Catalog, Col, Param, Project, RelExpr, Select, Table
from ..analysis import live_after_loop
from ..ir import EExists, ENode, EQuery, EScalarQuery, OUT_VAR, walk_enodes
from ..lang import (
    Assign,
    Block,
    Call,
    ExprStmt,
    ForEach,
    If,
    MethodCall,
    Name,
    New,
    Program,
    Stmt,
    StringLit,
    Unary,
    number_statements,
    walk_expressions,
    walk_statements,
)
from ..rewrite import EmitError, eliminate_dead_code, insert_extractions
from ..sqlparse import parse_query

KIND_AS_WRITTEN = "as-written"
KIND_PUSHDOWN = "pushdown"
KIND_BATCHED = "batched"
KIND_PREFETCH = "prefetch"
KIND_HYBRID = "hybrid"

#: Calls a loop body may make and still be eligible for batching: database
#: reads and output.  Anything else (user functions, writes) could observe
#: interleaving with the per-row queries, so batching is not attempted.
_BATCHABLE_CALLS = frozenset(
    {"executeQuery", "executeQueryCursor", "executeScalar", "executeExists",
     "print", "println"}
)
_DB_CALLS = frozenset(
    {"executeQuery", "executeQueryCursor", "executeScalar", "executeExists"}
)


@dataclass
class InnerLookup:
    """One ``v = executeScalar("... where key = :param")`` inside a loop."""

    assign_sid: int
    target: str
    param: str
    key_getter: str
    table: str
    key_column: str
    value_column: str
    rel: RelExpr


@dataclass
class Alternative:
    """One member of a site's rewrite space."""

    kind: str
    program: Program
    description: str
    #: Queries this alternative issues once, up front (push-down/hybrid).
    extracted_rels: list[RelExpr] = field(default_factory=list)
    #: True for the as-written member (identical to the original program).
    identity: bool = False

    def source(self) -> str:
        from ..lang import unparse_program

        return unparse_program(self.program)


@dataclass
class Site:
    """One extraction site (a loop) together with its rewrite space."""

    function: str
    loop_sid: int
    variables: list[str]
    outer_rel: RelExpr | None
    inner_lookups: list[InnerLookup]
    #: Per-row database calls the lookup matcher could not batch away.
    residual_inner_queries: int
    alternatives: list[Alternative] = field(default_factory=list)

    def alternative(self, kind: str) -> Alternative | None:
        for alt in self.alternatives:
            if alt.kind == kind:
                return alt
        return None

    @property
    def kinds(self) -> list[str]:
        return [alt.kind for alt in self.alternatives]


# ----------------------------------------------------------------------
# Generation


def generate_alternatives(report, catalog: Catalog, dialect: str = "repro") -> list[Site]:
    """The full rewrite space for every extraction site of ``report``.

    ``report`` is an :class:`~repro.core.ExtractionReport`; the function
    only relies on its ``original``/``function``/``variables`` fields, so
    the rewrites layer stays import-independent of :mod:`repro.core`.
    """
    program = report.original
    func = program.function(report.function)
    loop_stmts = {
        stmt.sid: stmt
        for stmt in walk_statements(func.body)
        if isinstance(stmt, ForEach)
    }

    by_loop: dict[int, list] = {}
    for extraction in report.variables.values():
        if extraction.loop_sid >= 0:
            by_loop.setdefault(extraction.loop_sid, []).append(extraction)

    sites: list[Site] = []
    for loop_sid in sorted(by_loop):
        extractions = by_loop[loop_sid]
        loop_stmt = loop_stmts.get(loop_sid)
        if loop_stmt is None:
            continue

        outer_name = _outer_iterable_name(loop_stmt)
        outer_rel = _outer_rel(func, loop_stmt, outer_name)
        lookups, residual = _find_inner_lookups(loop_stmt, catalog)

        site = Site(
            function=report.function,
            loop_sid=loop_sid,
            variables=sorted(e.variable for e in extractions),
            outer_rel=outer_rel,
            inner_lookups=lookups,
            residual_inner_queries=residual,
        )
        site.alternatives.append(
            Alternative(
                kind=KIND_AS_WRITTEN,
                program=program,
                description="keep the imperative loop exactly as written",
                identity=True,
            )
        )

        # Section 5.3 liveness accounting, per site (mirrors optimize_program).
        live = live_after_loop(func, loop_stmt)
        updated = {e.variable for e in extractions}
        if OUT_VAR in updated:
            live = live | {OUT_VAR}
        needed = live & updated
        extracted_ok = {
            e.variable for e in extractions if e.ok and e.node is not None
        }

        if needed and needed <= extracted_ok:
            pairs = [
                (e.variable, e.node)
                for e in extractions
                if e.variable in needed and e.node is not None
            ]
            alt = _extraction_alternative(
                program, report.function, loop_sid, pairs, dialect,
                kind=KIND_PUSHDOWN,
                description="replace the loop with its extracted SQL "
                "(full push-down, Section 5.2)",
            )
            if alt is not None:
                site.alternatives.append(alt)
        elif needed & extracted_ok:
            pairs = [
                (e.variable, e.node)
                for e in extractions
                if e.variable in (needed & extracted_ok) and e.node is not None
            ]
            alt = _extraction_alternative(
                program, report.function, loop_sid, pairs, dialect,
                kind=KIND_HYBRID,
                description="push down the extractable variables, keep a "
                "residual loop for the rest (partial extraction)",
            )
            if alt is not None:
                site.alternatives.append(alt)

        if lookups and _body_is_batchable(loop_stmt) and outer_name is not None:
            batched = _lookup_alternative(
                program, report.function, loop_sid, lookups, outer_name,
                prefetch=False,
            )
            if batched is not None:
                site.alternatives.append(batched)
            prefetch = _lookup_alternative(
                program, report.function, loop_sid, lookups, outer_name,
                prefetch=True,
            )
            if prefetch is not None:
                site.alternatives.append(prefetch)

        sites.append(site)
    return sites


# ----------------------------------------------------------------------
# Push-down / hybrid: reuse the Section 5.2 rewrite machinery per site.


def _extraction_alternative(
    program, function, loop_sid, pairs, dialect, *, kind, description
) -> Alternative | None:
    try:
        rewritten = insert_extractions(program, function, {loop_sid: pairs}, dialect)
        rewritten = eliminate_dead_code(rewritten, function)
    except EmitError:
        return None
    rels = [
        n.rel
        for _, node in pairs
        for n in walk_enodes(node)
        if isinstance(n, (EQuery, EScalarQuery, EExists))
    ]
    return Alternative(
        kind=kind,
        program=rewritten,
        description=description,
        extracted_rels=rels,
    )


# ----------------------------------------------------------------------
# Batched / prefetch: the N+1 point-lookup pattern.


def _outer_iterable_name(loop_stmt: ForEach) -> str | None:
    if isinstance(loop_stmt.iterable, Name):
        return loop_stmt.iterable.ident
    return None


def _outer_rel(func, loop_stmt: ForEach, outer_name: str | None) -> RelExpr | None:
    """The query the loop iterates, when it is a plain ``executeQuery``."""
    candidates: list[Call] = []
    if isinstance(loop_stmt.iterable, Call):
        candidates.append(loop_stmt.iterable)
    elif outer_name is not None:
        last = None
        for stmt in walk_statements(func.body):
            if stmt.sid >= loop_stmt.sid:
                break
            if isinstance(stmt, Assign) and stmt.target == outer_name:
                last = stmt
        if last is not None and isinstance(last.value, Call):
            candidates.append(last.value)
    for call in candidates:
        if (
            call.func in ("executeQuery", "executeQueryCursor")
            and len(call.args) == 1
            and isinstance(call.args[0], StringLit)
        ):
            try:
                return parse_query(call.args[0].value)
            except Exception:
                return None
    return None


def _find_inner_lookups(
    loop_stmt: ForEach, catalog: Catalog
) -> tuple[list[InnerLookup], int]:
    """Match direct-child ``param = cursor.getX(); v = executeScalar(...)``
    pairs whose query is a point lookup on a declared unique key.

    Returns the matched lookups and the count of per-row database calls
    the matcher could *not* account for (these stay per-row in the
    batched/prefetch programs, and are charged as such by the cost model).
    """
    body = loop_stmt.body.statements
    param_getters: dict[str, str] = {}
    param_assign_counts: dict[str, int] = {}
    for stmt in walk_statements(loop_stmt.body):
        if isinstance(stmt, Assign):
            param_assign_counts[stmt.target] = param_assign_counts.get(stmt.target, 0) + 1

    lookups: list[InnerLookup] = []
    matched_sids: set[int] = set()
    for stmt in body:
        if (
            isinstance(stmt, Assign)
            and isinstance(stmt.value, MethodCall)
            and isinstance(stmt.value.receiver, Name)
            and stmt.value.receiver.ident == loop_stmt.var
            and not stmt.value.args
        ):
            param_getters[stmt.target] = stmt.value.method
            continue
        lookup = _match_scalar_lookup(stmt, param_getters, param_assign_counts, catalog)
        if lookup is not None:
            lookups.append(lookup)
            matched_sids.add(stmt.sid)

    residual = 0
    for stmt in walk_statements(loop_stmt.body):
        if stmt.sid in matched_sids:
            continue
        for expr in _stmt_exprs(stmt):
            for node in walk_expressions(expr):
                if isinstance(node, Call) and node.func in _DB_CALLS:
                    residual += 1
    return lookups, residual


def _match_scalar_lookup(
    stmt: Stmt, param_getters: dict[str, str], param_assign_counts: dict[str, int],
    catalog: Catalog,
) -> InnerLookup | None:
    if not (
        isinstance(stmt, Assign)
        and isinstance(stmt.value, Call)
        and stmt.value.func == "executeScalar"
        and len(stmt.value.args) == 1
        and isinstance(stmt.value.args[0], StringLit)
    ):
        return None
    try:
        rel = parse_query(stmt.value.args[0].value)
    except Exception:
        return None
    match = _match_point_lookup(rel)
    if match is None:
        return None
    table, key_column, value_column, param = match
    if param not in param_getters or param_assign_counts.get(param, 0) != 1:
        return None
    if table not in catalog:
        return None
    if catalog.get(table).key != (key_column,):
        return None
    return InnerLookup(
        assign_sid=stmt.sid,
        target=stmt.target,
        param=param,
        key_getter=param_getters[param],
        table=table,
        key_column=key_column,
        value_column=value_column,
        rel=rel,
    )


def _match_point_lookup(rel: RelExpr) -> tuple[str, str, str, str] | None:
    """``π[V](σ[K = :p](T))`` → ``(T, K, V, p)``, else None."""
    if not isinstance(rel, Project) or len(rel.items) != 1:
        return None
    item = rel.items[0]
    if not isinstance(item.expr, Col):
        return None
    select = rel.child
    if not isinstance(select, Select) or not isinstance(select.child, Table):
        return None
    pred = select.pred
    if not isinstance(pred, BinOp) or pred.op != "=":
        return None
    col, param = pred.left, pred.right
    if isinstance(col, Param) and isinstance(param, Col):
        col, param = param, col
    if not (isinstance(col, Col) and isinstance(param, Param)):
        return None
    return select.child.name, col.name, item.expr.name, param.name


def _body_is_batchable(loop_stmt: ForEach) -> bool:
    for stmt in walk_statements(loop_stmt.body):
        for expr in _stmt_exprs(stmt):
            for node in walk_expressions(expr):
                if isinstance(node, Call) and node.func not in _BATCHABLE_CALLS:
                    return False
    return True


def _stmt_exprs(stmt: Stmt):
    if isinstance(stmt, Assign):
        return [stmt.value]
    if isinstance(stmt, ExprStmt):
        return [stmt.expr]
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, ForEach):
        return [stmt.iterable]
    cond = getattr(stmt, "cond", None)
    value = getattr(stmt, "value", None)
    return [e for e in (cond, value) if e is not None]


def _lookup_alternative(
    program, function, loop_sid, lookups, outer_name, *, prefetch: bool
) -> Alternative | None:
    result = copy.deepcopy(program)
    func = result.function(function)
    found = _find_loop(func.body, loop_sid)
    if found is None:
        return None
    loop_stmt, container, index = found

    pre: list[Stmt] = []
    rels: list[RelExpr] = []
    for i, lookup in enumerate(lookups):
        idx_var = f"__idx{i}"
        fetch_var = f"__fetch{i}"
        row_var = f"__row{i}"
        columns = [lookup.key_column]
        if lookup.value_column != lookup.key_column:
            columns.append(lookup.value_column)
        select_list = ", ".join(f"t.{c} as {c}" for c in columns)
        if prefetch:
            sql = f"select {select_list} from {lookup.table} as t"
        else:
            keys_var = f"__keys{i}"
            key_cursor = f"__k{i}"
            temp_table = f"__batch{i}"
            pre.append(Assign(target=keys_var, value=New(class_name="ArrayList", args=[])))
            pre.append(
                ForEach(
                    var=key_cursor,
                    iterable=Name(outer_name),
                    body=Block(
                        statements=[
                            ExprStmt(
                                expr=MethodCall(
                                    Name(keys_var),
                                    "add",
                                    [MethodCall(Name(key_cursor), lookup.key_getter, [])],
                                )
                            )
                        ]
                    ),
                )
            )
            pre.append(
                ExprStmt(
                    expr=Call(
                        func="registerTempTable",
                        args=[StringLit(temp_table), Name(keys_var)],
                    )
                )
            )
            sql = (
                f"select {select_list} from {lookup.table} as t, "
                f"{temp_table} as b where t.{lookup.key_column} = b.val"
            )
        try:
            rels.append(parse_query(sql))
        except Exception:
            return None
        pre.append(
            Assign(target=fetch_var, value=Call(func="executeQuery", args=[StringLit(sql)]))
        )
        pre.append(Assign(target=idx_var, value=New(class_name="HashMap", args=[])))
        key_expr = MethodCall(Name(row_var), _getter(lookup.key_column), [])
        value_expr = MethodCall(Name(row_var), _getter(lookup.value_column), [])
        put = ExprStmt(expr=MethodCall(Name(idx_var), "put", [key_expr, value_expr]))
        # executeScalar takes the first matching row; the unique key makes
        # first-match and only-match coincide, but guard anyway.
        first_match_only = If(
            cond=Unary(op="!", operand=MethodCall(Name(idx_var), "containsKey", [key_expr])),
            then_body=Block(statements=[put]),
        )
        pre.append(
            ForEach(
                var=row_var,
                iterable=Name(fetch_var),
                body=Block(statements=[first_match_only]),
            )
        )
        if not _replace_assign(
            loop_stmt.body,
            lookup.assign_sid,
            Assign(
                target=lookup.target,
                value=MethodCall(Name(idx_var), "get", [Name(lookup.param)]),
            ),
        ):
            return None

    container.statements[index:index] = pre
    number_statements(result)
    if prefetch:
        description = (
            "prefetch the whole inner table once and join in the "
            "application with a HashMap"
        )
    else:
        description = (
            "ship the outer keys as a temporary table, fetch all inner "
            "rows in one join, probe a HashMap in the loop"
        )
    return Alternative(
        kind=KIND_PREFETCH if prefetch else KIND_BATCHED,
        program=result,
        description=description,
        extracted_rels=rels,
    )


def _find_loop(block: Block, loop_sid: int) -> tuple[ForEach, Block, int] | None:
    for index, stmt in enumerate(block.statements):
        if isinstance(stmt, ForEach) and stmt.sid == loop_sid:
            return stmt, block, index
        for child in _child_blocks(stmt):
            found = _find_loop(child, loop_sid)
            if found is not None:
                return found
    return None


def _replace_assign(block: Block, assign_sid: int, replacement: Stmt) -> bool:
    for index, stmt in enumerate(block.statements):
        if isinstance(stmt, Assign) and stmt.sid == assign_sid:
            block.statements[index] = replacement
            return True
        for child in _child_blocks(stmt):
            if _replace_assign(child, assign_sid, replacement):
                return True
    return False


def _child_blocks(stmt: Stmt) -> list[Block]:
    blocks: list[Block] = []
    for attr in ("body", "then_body", "else_body", "try_body", "catch_body", "finally_body"):
        child = getattr(stmt, attr, None)
        if isinstance(child, Block):
            blocks.append(child)
    if isinstance(stmt, Block):
        blocks.append(stmt)
    return blocks


def _getter(column: str) -> str:
    return "get" + column[0].upper() + column[1:]
