"""Deterministic text rendering of a rewrite plan (``--explain-rewrites``).

The output is golden-file tested: every number comes from the analytic
cost model (no timings), so the rendering is stable across runs and
machines for a given source + schema + profile.
"""

from __future__ import annotations

from .selector import RewritePlan, SiteChoice


def render_explain(plan: RewritePlan) -> str:
    profile = plan.profile
    lines = [
        f"rewrite plan for {plan.function!r} under profile {profile.name!r} "
        f"(rtt {profile.round_trip_ms:g} ms, {profile.bytes_per_ms:g} bytes/ms)"
    ]
    if not plan.choices:
        lines.append("  (no extraction sites)")
        return "\n".join(lines)
    for choice in plan.choices:
        lines.extend(_render_choice(choice))
    return "\n".join(lines)


def _render_choice(choice: SiteChoice) -> list[str]:
    site = choice.site
    variables = ", ".join(site.variables)
    lines = [f"  site loop@{site.loop_sid} [{variables}]:"]
    for costed in choice.costed:
        marker = "->" if costed is choice.chosen else "  "
        cost = costed.cost
        lines.append(
            f"    {marker} {costed.kind:<11} {cost.total_ms:>10.3f} ms  "
            f"({cost.round_trips:g} round trip(s): "
            f"network {cost.round_trip_ms:.3f}, transfer {cost.transfer_ms:.3f}, "
            f"server {cost.server_ms:.3f}, client {cost.client_ms:.3f})"
        )
    lines.append(f"    {choice.why}")
    return lines
