"""Deployment profiles: the environment a rewrite is costed against.

Cobra's observation (PAPERS.md) is that the best among equivalent rewrites
depends on where the application runs: a chatty loop is fine when client
and server share a machine, and catastrophic over a WAN.  A
:class:`DeploymentProfile` captures exactly the parameters that decide
this — network round-trip latency, effective transfer bandwidth, per-row
server and client costs, and coarse table statistics (cardinalities and a
default selectivity).

Two built-ins ship:

``local``  client and server on one machine (the paper's testbed): cheap
           round trips, fast transfer;
``wan``    client far from the server: ~40 ms round trips, slow transfer —
           the setting where per-row query loops dominate everything else.

Profiles are frozen and dict-convertible so they can ride inside
:class:`~repro.core.ExtractOptions` cache keys by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from ..db import CostParameters


@dataclass(frozen=True)
class DeploymentProfile:
    """Cost-relevant description of one deployment environment.

    ``table_rows`` maps table names (case-insensitive) to assumed
    cardinalities; tables not listed get ``default_table_rows``.  It is
    stored as a tuple of pairs so the profile stays hashable.
    """

    name: str
    round_trip_ms: float = 0.35
    bytes_per_ms: float = 100_000.0
    per_result_row_ms: float = 0.0008
    per_scanned_row_ms: float = 0.0004
    per_query_overhead_ms: float = 0.05
    #: Client-side cost of touching one row (iteration, hashing, compare).
    client_row_ms: float = 0.002
    #: Estimated transfer size of one result row.
    row_bytes: float = 40.0
    table_rows: tuple[tuple[str, float], ...] = ()
    default_table_rows: float = 2000.0
    #: Fraction of a table a selection predicate retains.
    selectivity: float = 0.33

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("profile needs a name")
        numeric = (
            self.round_trip_ms, self.bytes_per_ms, self.per_result_row_ms,
            self.per_scanned_row_ms, self.per_query_overhead_ms,
            self.client_row_ms, self.row_bytes, self.default_table_rows,
        )
        if any(v < 0 for v in numeric) or self.bytes_per_ms == 0:
            raise ValueError(f"profile {self.name!r} has a negative/zero cost parameter")
        if not 0.0 < self.selectivity <= 1.0:
            raise ValueError(f"profile {self.name!r}: selectivity must be in (0, 1]")

    # ------------------------------------------------------------------

    def cardinality(self, table: str) -> float:
        """Assumed row count of ``table`` under this profile."""
        lowered = table.lower()
        for name, rows in self.table_rows:
            if name.lower() == lowered:
                return float(rows)
        return float(self.default_table_rows)

    def cost_parameters(self) -> CostParameters:
        """The simulated-connection parameters this profile corresponds to.

        Running a program through :class:`~repro.db.Connection` with these
        parameters yields simulated timings on the same scale the analytic
        cost model predicts.
        """
        return CostParameters(
            round_trip_ms=self.round_trip_ms,
            bytes_per_ms=self.bytes_per_ms,
            per_result_row_ms=self.per_result_row_ms,
            per_scanned_row_ms=self.per_scanned_row_ms,
            per_query_overhead_ms=self.per_query_overhead_ms,
        )

    def with_tables(self, rows: dict[str, float]) -> "DeploymentProfile":
        """A copy with table cardinalities replaced."""
        return replace(self, table_rows=tuple(sorted(rows.items())))

    def with_observed(self, database) -> "DeploymentProfile":
        """A copy whose table cardinalities are read from a live database's
        statistics (``Database.stats``) instead of assumed constants, so
        rewrite costing ranks alternatives against the observed data shape
        rather than the profile's defaults."""
        observed = {
            name: float(database.stats(name).row_count)
            for name in database.table_names()
        }
        return self.with_tables(observed)

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["table_rows"] = {name: rows for name, rows in self.table_rows}
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DeploymentProfile":
        if not isinstance(data, dict):
            raise ValueError(
                f"profile spec must be a mapping, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown profile field(s): {sorted(unknown)}")
        payload = dict(data)
        table_rows = payload.get("table_rows", ())
        if isinstance(table_rows, dict):
            payload["table_rows"] = tuple(sorted(table_rows.items()))
        else:
            payload["table_rows"] = tuple((n, float(r)) for n, r in table_rows)
        return cls(**payload)


LOCAL = DeploymentProfile(name="local")

WAN = DeploymentProfile(
    name="wan",
    round_trip_ms=40.0,
    bytes_per_ms=25_000.0,
    per_query_overhead_ms=0.3,
)

#: Built-in profiles, addressable by name from ``ExtractOptions.profile``
#: and ``--profile``.
PROFILES: dict[str, DeploymentProfile] = {
    LOCAL.name: LOCAL,
    WAN.name: WAN,
}


def get_profile(name: str | DeploymentProfile) -> DeploymentProfile:
    """Resolve a profile by name (or pass a profile through unchanged)."""
    if isinstance(name, DeploymentProfile):
        return name
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown deployment profile {name!r}; "
            f"expected one of {sorted(PROFILES)}"
        ) from None


def register_profile(profile: DeploymentProfile) -> DeploymentProfile:
    """Make a custom profile addressable by name (e.g. for ``--profile``)."""
    PROFILES[profile.name] = profile
    return profile
