"""Emission of extracted expressions back into MiniJava source (Sec 5.2).

After the rules eliminate all folds, a variable's value is an algebraic
expression over queries, scalar subqueries, EXISTS tests, constants and
program inputs.  This module turns that expression into MiniJava statements:

* ``EQuery``        → ``v = executeQuery("...")`` (with an unwrap loop when
  the original collection held scalars rather than whole rows)
* ``EScalarQuery``  → ``executeScalar("...")``
* ``EExists``       → ``executeExists("...")``
* ``combine_*``     → a temp + null check + the combining operation,
  preserving the imperative value on empty query results
* parameter bindings that are attribute reads become preamble assignments
  (``x__f = x.getF();``) so the emitted query's ``:x__f`` binds correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra import Col, Project, RelExpr
from ..ir import (
    EAttr,
    EConst,
    EExists,
    ENode,
    EOp,
    EQuery,
    EScalarQuery,
    EVar,
)
from ..sqlgen import render_rel
from ..lang import (
    Assign,
    Binary,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FloatLit,
    ForEach,
    If,
    IntLit,
    MethodCall,
    Name,
    New,
    NullLit,
    Block,
    Stmt,
    StringLit,
    Ternary,
    Unary,
)


class EmitError(Exception):
    """The expression has no MiniJava emission (should not happen for
    fully-transformed results)."""


@dataclass
class Emitter:
    """Allocates temporaries and accumulates preamble statements."""

    dialect: str = "repro"
    preamble: list[Stmt] = field(default_factory=list)
    _temp_counter: int = 0
    _bound_params: set[str] = field(default_factory=set)

    def fresh(self, prefix: str = "__tmp") -> str:
        name = f"{prefix}{self._temp_counter}"
        self._temp_counter += 1
        return name

    # ------------------------------------------------------------------

    def statements_for(self, target: str, node: ENode) -> list[Stmt]:
        """Full emission: preamble plus the assignment(s) for ``target``."""
        self.preamble = []
        if isinstance(node, EOp) and node.op == "with_temp":
            # Ship the collection as a temporary table first (Section 2).
            inner, table, source_var = node.operands
            register = ExprStmt(
                expr=Call(
                    func="registerTempTable",
                    args=[StringLit(table.value), Name(source_var.name)],
                )
            )
            return [register] + self.statements_for(target, inner)
        if isinstance(node, EOp) and node.op == "as_pairs":
            statements = self._emit_collection(target, node.operands[0], pairs=True)
        elif isinstance(node, EQuery):
            statements = self._emit_collection(target, node)
        else:
            expr = self.expr(node)
            statements = [Assign(target=target, value=expr)]
        return self.preamble + statements

    # ------------------------------------------------------------------
    # Collections

    def _emit_collection(
        self, target: str, node: EQuery, pairs: bool = False
    ) -> list[Stmt]:
        sql = render_rel(node.rel, self.dialect)
        self._bind_params(node.params)
        query_call = Call(func="executeQuery", args=[StringLit(sql)])
        if pairs:
            columns = _projected_columns(node.rel) or []
            element: Expr = New(
                class_name="Pair",
                args=[
                    MethodCall(Name("__r"), _getter(c), []) for c in columns
                ],
            )
        else:
            unwrap = _unwrap_column(node.rel)
            if unwrap is None:
                return [Assign(target=target, value=query_call)]
            element = MethodCall(Name("__r"), _getter(unwrap), [])
        rows_var = self.fresh("__rows")
        row_var = self.fresh("__r")
        element = _rename_row_var(element, row_var)
        build_loop = ForEach(
            var=row_var,
            iterable=Name(rows_var),
            body=Block(
                statements=[
                    ExprStmt(
                        expr=MethodCall(
                            receiver=Name(target), method="add", args=[element]
                        )
                    )
                ]
            ),
        )
        container = "HashSet" if _is_distinct(node.rel) else "ArrayList"
        return [
            Assign(target=rows_var, value=query_call),
            Assign(target=target, value=New(class_name=container, args=[])),
            build_loop,
        ]

    # ------------------------------------------------------------------
    # Scalars

    def expr(self, node: ENode) -> Expr:
        if isinstance(node, EConst):
            return _literal(node.value)
        if isinstance(node, EVar):
            return Name(node.name)
        if isinstance(node, EAttr):
            getter = "get" + node.attr[0].upper() + node.attr[1:]
            return MethodCall(self.expr(node.base), getter, [])
        if isinstance(node, EScalarQuery):
            sql = render_rel(node.rel, self.dialect)
            self._bind_params(node.params)
            return Call(func="executeScalar", args=[StringLit(sql)])
        if isinstance(node, EExists):
            sql = render_rel(node.rel, self.dialect)
            self._bind_params(node.params)
            call = Call(func="executeExists", args=[StringLit(sql)])
            if node.negated:
                return Unary(op="!", operand=call)
            return call
        if isinstance(node, EQuery):
            raise EmitError("collection query in scalar position")
        if isinstance(node, EOp):
            return self._emit_op(node)
        raise EmitError(f"cannot emit {type(node).__name__}")

    _BINARY = {
        "+": "+",
        "-": "-",
        "*": "*",
        "/": "/",
        "%": "%",
        "==": "==",
        "!=": "!=",
        "<": "<",
        ">": ">",
        "<=": "<=",
        ">=": ">=",
        "and": "&&",
        "or": "||",
    }

    # op → (default on NULL source, combining shape); class constant, not a
    # dataclass field.
    _COMBINE_DEFAULTS = {
        # op → (default on NULL source, combining shape)
        "combine_max": ("init", "max"),
        "combine_min": ("init", "min"),
        "combine_sum": ("zero", "+"),
        "combine_count": ("zero", "+"),
        "combine_or": ("false", "||"),
        "combine_and": ("true", "&&"),
    }

    def _emit_op(self, node: EOp) -> Expr:
        op = node.op
        if op in self._COMBINE_DEFAULTS:
            return self._emit_combine(node)
        if op in self._BINARY and len(node.operands) == 2:
            left, right = node.operands
            if op in ("<", ">", "<=", ">=", "==", "!=") and (
                isinstance(left, EScalarQuery) or isinstance(right, EScalarQuery)
            ):
                # A scalar subquery is NULL on empty input; SQL comparison
                # with NULL is unknown (falsy), so the emitted Java guards
                # with a null check to match.
                return self._emit_null_guarded_compare(op, left, right)
            return Binary(
                op=self._BINARY[op],
                left=self.expr(left),
                right=self.expr(right),
            )
        if op == "not":
            return Unary(op="!", operand=self.expr(node.operands[0]))
        if op == "neg":
            return Unary(op="-", operand=self.expr(node.operands[0]))
        if op == "?":
            return Ternary(
                cond=self.expr(node.operands[0]),
                if_true=self.expr(node.operands[1]),
                if_false=self.expr(node.operands[2]),
            )
        if op in ("max", "min"):
            return MethodCall(
                receiver=Name("Math"),
                method=op,
                args=[self.expr(c) for c in node.operands],
            )
        if op == "coalesce":
            temp = self.fresh()
            self.preamble.append(
                Assign(target=temp, value=self.expr(node.operands[0]))
            )
            self.preamble.append(
                If(
                    cond=Binary(op="==", left=Name(temp), right=NullLit()),
                    then_body=Block(
                        statements=[
                            Assign(target=temp, value=self.expr(node.operands[1]))
                        ]
                    ),
                )
            )
            return Name(temp)
        if op == "not_null":
            return Binary(
                op="!=", left=self.expr(node.operands[0]), right=NullLit()
            )
        if op == "empty_list":
            return New(class_name="ArrayList", args=[])
        if op == "empty_set":
            return New(class_name="HashSet", args=[])
        raise EmitError(f"cannot emit operator {op!r}")

    def _emit_null_guarded_compare(self, op: str, left: ENode, right: ENode) -> Expr:
        guards: list[Expr] = []

        def hoisted(operand: ENode) -> Expr:
            if isinstance(operand, EScalarQuery):
                temp = self.fresh()
                self.preamble.append(Assign(target=temp, value=self.expr(operand)))
                guards.append(Binary(op="!=", left=Name(temp), right=NullLit()))
                return Name(temp)
            return self.expr(operand)

        left_expr = hoisted(left)
        right_expr = hoisted(right)
        comparison: Expr = Binary(op=self._BINARY[op], left=left_expr, right=right_expr)
        for guard in reversed(guards):
            comparison = Binary(op="&&", left=guard, right=comparison)
        return comparison

    def _emit_combine(self, node: EOp) -> Expr:
        """``combine_op(init, scalar)``: hoist the scalar into a temp, apply
        the NULL default, then combine with the initial value."""
        default_kind, shape = self._COMBINE_DEFAULTS[node.op]
        init_expr = self.expr(node.operands[0])
        scalar_expr = self.expr(node.operands[1])
        temp = self.fresh()
        self.preamble.append(Assign(target=temp, value=scalar_expr))
        default: Expr
        if default_kind == "zero":
            default = IntLit(0)
        elif default_kind == "false":
            default = BoolLit(False)
        elif default_kind == "true":
            default = BoolLit(True)
        else:
            default = init_expr
        self.preamble.append(
            If(
                cond=Binary(op="==", left=Name(temp), right=NullLit()),
                then_body=Block(statements=[Assign(target=temp, value=default)]),
            )
        )
        if shape in ("max", "min"):
            return MethodCall(Name("Math"), shape, [init_expr, Name(temp)])
        return Binary(op=shape, left=init_expr, right=Name(temp))

    # ------------------------------------------------------------------

    def _bind_params(self, params) -> None:
        """Emit preamble assignments for non-trivial parameter bindings."""
        for name, node in params:
            if isinstance(node, EVar) and node.name == name:
                continue  # :x binds the variable x directly
            if name in self._bound_params:
                continue
            self._bound_params.add(name)
            self.preamble.append(Assign(target=name, value=self.expr(node)))


def _literal(value) -> Expr:
    if value is None:
        return NullLit()
    if isinstance(value, bool):
        return BoolLit(value)
    if isinstance(value, int):
        return IntLit(value)
    if isinstance(value, float):
        return FloatLit(value)
    if isinstance(value, str):
        return StringLit(value)
    raise EmitError(f"cannot emit literal {value!r}")


def _getter(column: str) -> str:
    return "get" + column[0].upper() + column[1:]


def _rename_row_var(expr: Expr, row_var: str) -> Expr:
    """Rename the placeholder ``__r`` receiver to the allocated temp name."""
    if isinstance(expr, Name) and expr.ident == "__r":
        return Name(row_var)
    if isinstance(expr, MethodCall):
        return MethodCall(
            _rename_row_var(expr.receiver, row_var),
            expr.method,
            [_rename_row_var(a, row_var) for a in expr.args],
        )
    if isinstance(expr, New):
        return New(expr.class_name, [_rename_row_var(a, row_var) for a in expr.args])
    return expr


def _projected_columns(rel: RelExpr) -> list[str] | None:
    """Output column names of a top-level projection (through τ/δ/limit)."""
    from ..algebra import Distinct, Limit, Select, Sort

    while isinstance(rel, (Distinct, Sort, Limit, Select)):
        rel = rel.children()[0]
    if isinstance(rel, Project):
        return [item.output_name for item in rel.items]
    return None


def _unwrap_column(rel: RelExpr) -> str | None:
    """When the query's rows wrap a single scalar column, the rewritten
    program unwraps it so the collection holds scalars as before."""
    from ..algebra import Distinct, Limit, Select, Sort

    while isinstance(rel, (Distinct, Sort, Limit, Select)):
        rel = rel.children()[0]
    if isinstance(rel, Project) and len(rel.items) == 1:
        return rel.items[0].output_name
    return None


def _is_distinct(rel: RelExpr) -> bool:
    from ..algebra import Distinct

    return isinstance(rel, Distinct)
