"""Query consolidation inside cursor loops (paper Appendix B, Fig 12→13).

When a cursor loop interleaves data access with presentation logic — it
iterates one query and issues correlated scalar queries per row — the whole
loop cannot be replaced (the presentation stays), but its *data access* can
be consolidated into a single OUTER APPLY query:

    Q1 OUTER APPLY Q2 OUTER APPLY ... (Figure 13)

The loop then iterates the consolidated query and each inner
``executeScalar`` becomes an attribute read on the cursor.  Conditional
queries (``if (mode == "online") s = executeScalar(...)``) keep their guard
in the program and additionally push it into the applied subquery when the
condition is expressible over the cursor's columns, exactly as Figure 13's
``and Q1.applnMode = 'online'``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..algebra import Catalog, RelExpr, Select
from ..fir import CapableButUnimplemented, NotScalarizable, scalarize
from ..ir import DIRBuilder, DIRContext, EQuery, EScalarQuery, EVar, ENode
from ..ir.subst import bind_vars
from ..lang import (
    Assign,
    Block,
    Call,
    Expr,
    ForEach,
    If,
    MethodCall,
    Name,
    Program,
    Stmt,
    StringLit,
    walk_statements,
    number_statements,
)
from ..rules.decorrelate import (
    DecorrelationError,
    decorrelate_for_apply,
    ensure_alias,
    rename_single_output,
    split_params,
)
from ..sqlgen import SqlGenError, render_rel


@dataclass
class Consolidation:
    """One consolidated loop."""

    loop_sid: int
    sql: str
    queries_merged: int
    rel: RelExpr | None = None


@dataclass
class _Candidate:
    assign: Assign
    node: EScalarQuery
    guards: list[ENode] = field(default_factory=list)


def consolidate_loops(
    program: Program,
    function: str,
    catalog: Catalog,
    dialect: str = "repro",
) -> tuple[Program, list[Consolidation]]:
    """Consolidate correlated scalar queries in every eligible cursor loop.

    Returns (rewritten deep copy, consolidation records).  Loops without at
    least one correlated scalar query are left untouched.
    """
    result = copy.deepcopy(program)
    func = result.function(function)
    records: list[Consolidation] = []
    context = DIRContext(program=result)
    builder = DIRBuilder(context)

    def visit_block(block: Block) -> None:
        for index, stmt in enumerate(block.statements):
            for child in _child_blocks(stmt):
                visit_block(child)
            if isinstance(stmt, ForEach):
                record = _consolidate_one(stmt, block, index, builder, dialect)
                if record is not None:
                    records.append(record)

    visit_block(func.body)
    if records:
        number_statements(result)
    return result, records


def _child_blocks(stmt: Stmt) -> list[Block]:
    from ..lang import TryCatch, While

    if isinstance(stmt, Block):
        return [stmt]
    if isinstance(stmt, If):
        blocks = [stmt.then_body]
        if stmt.else_body is not None:
            blocks.append(stmt.else_body)
        return blocks
    if isinstance(stmt, (ForEach, While)):
        return [stmt.body]
    if isinstance(stmt, TryCatch):
        blocks = [stmt.try_body]
        if stmt.catch_body is not None:
            blocks.append(stmt.catch_body)
        if stmt.finally_body is not None:
            blocks.append(stmt.finally_body)
        return blocks
    return []


def _consolidate_one(
    loop: ForEach, block: Block, loop_index: int, builder: DIRBuilder, dialect: str
) -> Consolidation | None:
    # Resolve the iterated query: either inline (`for (t : executeQuery(...))`)
    # or through the defining assignment earlier in the same block.
    defining_assign: Assign | None = None
    if isinstance(loop.iterable, Call):
        source_node = builder._convert(loop.iterable, {})
    elif isinstance(loop.iterable, Name):
        for prior in reversed(block.statements[:loop_index]):
            if isinstance(prior, Assign) and prior.target == loop.iterable.ident:
                defining_assign = prior
                break
        if defining_assign is None or not isinstance(defining_assign.value, Call):
            return None
        source_node = builder._convert(defining_assign.value, {})
    else:
        return None
    if not isinstance(source_node, EQuery):
        return None

    candidates = _collect_candidates(loop.body, loop.var, builder)
    correlated = [c for c in candidates if _is_correlated(c.node, loop.var)]
    if not correlated:
        return None

    taken: set[str] = set()
    left_rel, left_alias = ensure_alias(source_node.rel, taken, "q1")
    taken.add(left_alias)

    rel: RelExpr = left_rel
    rewrites: list[tuple[Assign, str]] = []
    merged = 0
    for index, candidate in enumerate(correlated):
        bound = bind_vars(candidate.node, {loop.var}, builder.dag)
        assert isinstance(bound, EScalarQuery)
        try:
            bindings = split_params(bound.params, loop.var, left_alias)
        except DecorrelationError:
            continue
        if bindings.outer:
            continue  # parameters beyond the cursor: leave this query alone
        inner = decorrelate_for_apply(bound.rel, bindings)
        inner = _push_guards(inner, candidate.guards, loop.var, left_alias, builder)
        column = f"c{index}"
        try:
            inner = rename_single_output(inner, column)
        except DecorrelationError:
            continue
        applied, _ = ensure_alias(inner, taken, f"ap{index}")
        taken.add(f"ap{index}")
        from ..algebra import OuterApply

        rel = OuterApply(rel, applied)
        rewrites.append((candidate.assign, column))
        merged += 1

    if not rewrites:
        return None
    try:
        sql = render_rel(rel, dialect)
    except SqlGenError:
        return None

    new_query = Call(func="executeQuery", args=[StringLit(sql)])
    if defining_assign is not None:
        defining_assign.value = new_query
    else:
        loop.iterable = new_query
    for assign, column in rewrites:
        getter = "get" + column[0].upper() + column[1:]
        assign.value = MethodCall(receiver=Name(loop.var), method=getter, args=[])
    return Consolidation(
        loop_sid=loop.sid, sql=sql, queries_merged=merged + 1, rel=rel
    )


def _collect_candidates(
    block: Block, cursor: str, builder: DIRBuilder, guards: list[ENode] | None = None
) -> list[_Candidate]:
    """Find ``v = executeScalar(...)`` statements, tracking running
    assignments (so intermediates like ``id = t.getId()`` resolve) and the
    guarding conditions on the path."""
    guards = guards or []
    ve: dict[str, ENode] = {}
    found: list[_Candidate] = []

    def walk(blk: Block, ve: dict[str, ENode], guards: list[ENode]) -> None:
        for stmt in blk.statements:
            if isinstance(stmt, Assign):
                if (
                    isinstance(stmt.value, Call)
                    and stmt.value.func == "executeScalar"
                    and len(stmt.value.args) == 1
                ):
                    node = builder._convert(stmt.value, ve)
                    if isinstance(node, EScalarQuery):
                        found.append(
                            _Candidate(assign=stmt, node=node, guards=list(guards))
                        )
                        continue
                ve[stmt.target] = builder._convert(stmt.value, ve)
            elif isinstance(stmt, If):
                cond = builder._convert(stmt.cond, ve)
                walk(stmt.then_body, dict(ve), guards + [cond])
                if stmt.else_body is not None:
                    negated = builder.dag.op("not", cond)
                    walk(stmt.else_body, dict(ve), guards + [negated])
            # Nested loops and other statements: do not consolidate across
            # them (their own pass handles nested cursor loops).

    walk(block, ve, guards)
    return found


def _is_correlated(node: EScalarQuery, cursor: str) -> bool:
    from ..ir import walk_enodes, EAttr, EBoundVar

    for _, binding in node.params:
        for n in walk_enodes(binding):
            if isinstance(n, EVar) and n.name == cursor:
                return True
            if isinstance(n, EAttr) and isinstance(n.base, (EVar, EBoundVar)):
                if n.base.name == cursor:
                    return True
    return False


def _push_guards(
    rel: RelExpr, guards: list[ENode], cursor: str, left_alias: str, builder
) -> RelExpr:
    """Conjoin path conditions into the applied subquery (Figure 13)."""
    for guard in guards:
        bound = bind_vars(guard, {cursor}, builder.dag)
        try:
            pred = scalarize(bound, cursor)
        except (NotScalarizable, CapableButUnimplemented):
            continue  # guard stays only in the program: still correct
        pred = _qualify_bare(pred, left_alias, rel)
        rel = Select(rel, pred)
    return rel


def _qualify_bare(pred, left_alias: str, inner_rel: RelExpr):
    """Qualify the guard's cursor columns with the outer alias.

    The guard was written over the cursor tuple (outer columns); inside the
    applied subquery those names could collide with inner columns, so they
    are qualified with the outer alias.
    """
    from ..algebra import Col, rename_columns, walk_scalar

    mapping = {}
    for node in walk_scalar(pred):
        if isinstance(node, Col) and node.qualifier is None:
            mapping[node.name] = f"{left_alias}.{node.name}"
    return rename_columns(pred, mapping)
