"""Program rewriting to use extracted SQL (paper Section 5.2).

The extracted assignment ``v = <equivalent SQL>`` is inserted immediately
after the cursor loop that computed ``v``; transitive dead-code elimination
then removes the parts of the original program the extraction made
redundant — typically the whole loop.  Partial extraction falls out
naturally: when some variable in the loop could not be extracted, the loop
survives with only the statements that variable needs (paper Section 5.3's
heuristic decides whether that is worthwhile; see :mod:`repro.core`).
"""

from __future__ import annotations

import copy

from ..analysis import (
    DB_LOCATION,
    OUT_LOCATION,
    RET_LOCATION,
    expr_reads,
    expr_writes,
    stmt_def_use,
)
from ..ir.preprocess import OUT_VAR
from ..ir import ENode
from ..lang import (
    Assign,
    Block,
    Call,
    ExprStmt,
    ForEach,
    FunctionDef,
    If,
    Program,
    Return,
    Stmt,
    TryCatch,
    While,
    number_statements,
    walk_expressions,
)
from .emit import Emitter


def insert_extractions(
    program: Program,
    function: str,
    extractions: dict[int, list[tuple[str, ENode]]],
    dialect: str = "repro",
) -> Program:
    """Insert ``v = <extracted>`` statements after their source loops.

    ``extractions`` maps a loop statement id to the (variable, expression)
    pairs extracted from that loop.  Returns a rewritten deep copy.
    """
    result = copy.deepcopy(program)
    func = result.function(function)
    emitter = Emitter(dialect=dialect)
    _insert_in_block(func.body, extractions, emitter)
    number_statements(result)
    return result


def _insert_in_block(
    block: Block,
    extractions: dict[int, list[tuple[str, ENode]]],
    emitter: Emitter,
) -> None:
    i = 0
    while i < len(block.statements):
        stmt = block.statements[i]
        for child in _child_blocks(stmt):
            _insert_in_block(child, extractions, emitter)
        if stmt.sid in extractions:
            inserted: list[Stmt] = []
            for variable, node in extractions[stmt.sid]:
                inserted.extend(emitter.statements_for(variable, node))
            block.statements[i + 1 : i + 1] = inserted
            i += len(inserted)
        i += 1


# ----------------------------------------------------------------------
# Dead code elimination (paper Section 5.2: "parts of the original program
# which are now rendered redundant/unused are removed")


def eliminate_dead_code(program: Program, function: str) -> Program:
    """Remove assignments and loops whose results are never observed.

    Observable sinks: the return value, the output stream (``__out__``),
    and database writes.  Conservative for unknown calls and try/catch.
    """
    result = copy.deepcopy(program)
    func = result.function(function)
    changed = True
    while changed:
        live = {RET_LOCATION, OUT_VAR, OUT_LOCATION, DB_LOCATION}
        changed = _eliminate_block(func.body, live)
    number_statements(result)
    return result


def _eliminate_block(block: Block, live: set[str]) -> bool:
    """Backward pass; mutates the block, updates ``live`` in place.

    Returns True when anything was removed.
    """
    changed = False
    for index in range(len(block.statements) - 1, -1, -1):
        stmt = block.statements[index]
        keep, removed_inside = _process_stmt(stmt, live)
        changed |= removed_inside
        if not keep:
            del block.statements[index]
            changed = True
    return changed


def _process_stmt(stmt: Stmt, live: set[str]) -> tuple[bool, bool]:
    """Returns (keep this statement, anything removed inside it)."""
    if isinstance(stmt, Return):
        live |= stmt_def_use(stmt).reads
        return True, False

    if isinstance(stmt, Assign):
        has_side_effects = _expr_has_side_effects(stmt.value)
        if stmt.target not in live and not has_side_effects:
            return False, False
        live.discard(stmt.target)
        live.update(stmt_def_use(stmt).reads)
        return True, False

    if isinstance(stmt, ExprStmt):
        summary = stmt_def_use(stmt)
        writes_live = any(
            w in live or w in (DB_LOCATION, OUT_LOCATION) for w in summary.writes
        )
        impure = _expr_has_side_effects(stmt.expr, ignore_reads=True)
        if not writes_live and not impure:
            return False, False
        live.update(summary.reads)
        return True, False

    if isinstance(stmt, If):
        then_live = set(live)
        removed = _eliminate_block(stmt.then_body, then_live)
        else_live = set(live)
        if stmt.else_body is not None:
            removed |= _eliminate_block(stmt.else_body, else_live)
        if not stmt.then_body.statements and (
            stmt.else_body is None or not stmt.else_body.statements
        ):
            return False, removed
        live.clear()
        live.update(then_live | else_live | expr_reads(stmt.cond))
        return True, removed

    if isinstance(stmt, (ForEach, While)):
        # Fixpoint over iterations: a variable read by a *surviving* body
        # statement may carry the previous iteration's value, so it must
        # stay live for the body itself.  Trial passes run on a copy until
        # the keep-set stabilises, then one destructive pass applies it.
        body_live_out = set(live)
        for _ in range(len(stmt.body.statements) + 2):
            trial = copy.deepcopy(stmt.body)
            trial_live = set(body_live_out)
            _eliminate_block(trial, trial_live)
            trial_live = {v for v in trial_live if not v.startswith("@")}
            if trial_live <= body_live_out:
                break
            body_live_out |= trial_live
        removed = _eliminate_block(stmt.body, body_live_out)
        if not stmt.body.statements and _iterable_is_pure(stmt):
            return False, removed
        # The loop may run zero times, so a body assignment never *kills*
        # liveness for the code above the loop: everything live after the
        # loop stays live before it, in addition to what the body reads.
        live.update(body_live_out)
        if isinstance(stmt, ForEach):
            live.discard(stmt.var)
            live.update(expr_reads(stmt.iterable))
        else:
            live.update(expr_reads(stmt.cond))
        return True, removed

    if isinstance(stmt, Block):
        removed = _eliminate_block(stmt, live)
        return bool(stmt.statements), removed

    if isinstance(stmt, TryCatch):
        # Conservative: keep, but make all reads live.
        from ..analysis import all_reads

        live.update(all_reads(stmt))
        return True, False

    return True, False


def _body_reads(stmt: ForEach | While) -> set[str]:
    from ..analysis import all_reads

    return {r for r in all_reads(stmt.body) if not r.startswith("@")}


def _iterable_is_pure(stmt: ForEach | While) -> bool:
    if isinstance(stmt, While):
        return not _expr_has_side_effects(stmt.cond, ignore_reads=True)
    return not _expr_has_side_effects(stmt.iterable, ignore_reads=True)


_PURE_CALLS = {"executeQuery", "executeQueryCursor", "executeScalar", "executeExists"}


def _expr_has_side_effects(expr, ignore_reads: bool = False) -> bool:
    """True when evaluating the expression could be observable.

    Database reads are pure; database writes, output calls, and calls to
    user-defined functions (which may do either) are side effects.
    Mutation of a *local* collection is not intrinsically observable — it
    matters only if the collection is live, which the caller checks.
    """
    if any(w.startswith("@") for w in expr_writes(expr)):
        return True
    for node in walk_expressions(expr):
        if isinstance(node, Call) and node.func not in _PURE_CALLS and node.func not in (
            "print",
            "println",
        ):
            return True  # unknown user function: conservative
        if isinstance(node, Call) and node.func in ("print", "println"):
            return True
    return False


def _child_blocks(stmt: Stmt) -> list[Block]:
    if isinstance(stmt, Block):
        return [stmt]
    if isinstance(stmt, If):
        blocks = [stmt.then_body]
        if stmt.else_body is not None:
            blocks.append(stmt.else_body)
        return blocks
    if isinstance(stmt, (ForEach, While)):
        return [stmt.body]
    if isinstance(stmt, TryCatch):
        blocks = [stmt.try_body]
        if stmt.catch_body is not None:
            blocks.append(stmt.catch_body)
        if stmt.finally_body is not None:
            blocks.append(stmt.finally_body)
        return blocks
    return []
