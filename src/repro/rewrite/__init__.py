"""Program rewriting: extracted SQL insertion and dead-code elimination."""

from .consolidate import Consolidation, consolidate_loops
from .emit import EmitError, Emitter
from .rewriter import eliminate_dead_code, insert_extractions

__all__ = [
    "Consolidation",
    "EmitError",
    "Emitter",
    "consolidate_loops",
    "eliminate_dead_code",
    "insert_extractions",
]
