"""Abstract syntax tree for MiniJava.

Nodes are plain dataclasses.  Statements carry a mutable ``sid`` (statement
id) assigned by :func:`number_statements`; the ids are used by the dataflow
analyses (data-dependence graph, slicing) and by the program rewriter, which
must locate and replace statements in the tree.

Every node also carries its source position (``line``, ``col``, both
1-based; 0 means "synthetic" — built by preprocessing or a rewrite rather
than parsed from source).  Diagnostics and parse errors use these to point
at code.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Node:
    """Base class for all AST nodes."""

    line: int = 0
    col: int = 0


# ----------------------------------------------------------------------
# Expressions


class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLit(Expr):
    value: int
    line: int = 0
    col: int = 0


@dataclass
class FloatLit(Expr):
    value: float
    line: int = 0
    col: int = 0


@dataclass
class StringLit(Expr):
    value: str
    line: int = 0
    col: int = 0


@dataclass
class BoolLit(Expr):
    value: bool
    line: int = 0
    col: int = 0


@dataclass
class NullLit(Expr):
    line: int = 0
    col: int = 0


@dataclass
class Name(Expr):
    """A variable reference."""

    ident: str
    line: int = 0
    col: int = 0


@dataclass
class Binary(Expr):
    """A binary operation such as ``a + b`` or ``x > y``."""

    op: str
    left: Expr
    right: Expr
    line: int = 0
    col: int = 0


@dataclass
class Unary(Expr):
    """A unary operation: ``-x`` or ``!cond``."""

    op: str
    operand: Expr
    line: int = 0
    col: int = 0


@dataclass
class Ternary(Expr):
    """The conditional expression ``cond ? if_true : if_false``."""

    cond: Expr
    if_true: Expr
    if_false: Expr
    line: int = 0
    col: int = 0


@dataclass
class Call(Expr):
    """A free function call, e.g. ``executeQuery("...")`` or a user function."""

    func: str
    args: list[Expr]
    line: int = 0
    col: int = 0


@dataclass
class MethodCall(Expr):
    """A method call on a receiver, e.g. ``t.getP1()`` or ``Math.max(a, b)``."""

    receiver: Expr
    method: str
    args: list[Expr]
    line: int = 0
    col: int = 0


@dataclass
class FieldAccess(Expr):
    """A field read, e.g. ``t.score``."""

    receiver: Expr
    field: str
    line: int = 0
    col: int = 0


@dataclass
class New(Expr):
    """Object construction, e.g. ``new ArrayList()`` or ``new HashSet()``."""

    class_name: str
    args: list[Expr]
    line: int = 0
    col: int = 0


# ----------------------------------------------------------------------
# Statements


class Stmt(Node):
    """Base class for statements.  ``sid`` is assigned by numbering."""

    sid: int = -1


@dataclass
class Assign(Stmt):
    """``target = value;`` (or an augmented form ``+=`` etc.).

    ``target`` is a plain variable name; MiniJava does not model field or
    array-element assignment targets (the paper's examples do not need them —
    setter calls are modelled as :class:`ExprStmt` of a :class:`MethodCall`).
    """

    target: str
    value: Expr
    op: str = "="
    declared_type: str | None = None
    sid: int = -1
    line: int = 0
    col: int = 0


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects, e.g. ``list.add(x);``."""

    expr: Expr
    sid: int = -1
    line: int = 0
    col: int = 0


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)
    sid: int = -1
    line: int = 0
    col: int = 0


@dataclass
class If(Stmt):
    cond: Expr
    then_body: Block
    else_body: Block | None = None
    sid: int = -1
    line: int = 0
    col: int = 0


@dataclass
class ForEach(Stmt):
    """A cursor loop: ``for (var : iterable) body``."""

    var: str
    iterable: Expr
    body: Block = field(default_factory=Block)
    sid: int = -1
    line: int = 0
    col: int = 0


@dataclass
class While(Stmt):
    cond: Expr
    body: Block = field(default_factory=Block)
    sid: int = -1
    line: int = 0
    col: int = 0


@dataclass
class Return(Stmt):
    value: Expr | None = None
    sid: int = -1
    line: int = 0
    col: int = 0


@dataclass
class Break(Stmt):
    sid: int = -1
    line: int = 0
    col: int = 0


@dataclass
class Continue(Stmt):
    sid: int = -1
    line: int = 0
    col: int = 0


@dataclass
class TryCatch(Stmt):
    """A try/catch/finally block.

    The analysis conservatively treats the try body as the unit of
    optimisation (Section 2 of the paper): code inside a single try block may
    be rewritten, but extraction never crosses try-catch boundaries.
    """

    try_body: Block = field(default_factory=Block)
    catch_var: str | None = None
    catch_body: Block | None = None
    finally_body: Block | None = None
    sid: int = -1
    line: int = 0
    col: int = 0


# ----------------------------------------------------------------------
# Top level


@dataclass
class FunctionDef(Node):
    name: str
    params: list[str]
    body: Block
    line: int = 0
    col: int = 0


@dataclass
class Program(Node):
    functions: list[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        """Return the function definition with the given name."""
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")


# ----------------------------------------------------------------------
# Utilities


def number_statements(node: Node, start: int = 0) -> int:
    """Assign consecutive ``sid`` values to every statement under ``node``.

    Returns the next unused id.  Numbering is depth-first in source order, so
    ids are consistent with textual statement order inside any one block.
    """
    counter = start

    def visit(n: Node) -> None:
        nonlocal counter
        if isinstance(n, Stmt):
            n.sid = counter
            counter += 1
        for child in child_statements(n):
            visit(child)

    visit(node)
    return counter


def child_statements(node: Node) -> list[Stmt]:
    """Return the direct child statements of a node (not expressions)."""
    if isinstance(node, Program):
        return [func.body for func in node.functions]
    if isinstance(node, FunctionDef):
        return [node.body]
    if isinstance(node, Block):
        return list(node.statements)
    if isinstance(node, If):
        children: list[Stmt] = [node.then_body]
        if node.else_body is not None:
            children.append(node.else_body)
        return children
    if isinstance(node, (ForEach, While)):
        return [node.body]
    if isinstance(node, TryCatch):
        children = [node.try_body]
        if node.catch_body is not None:
            children.append(node.catch_body)
        if node.finally_body is not None:
            children.append(node.finally_body)
        return children
    return []


def walk_statements(node: Node):
    """Yield every statement under ``node`` in depth-first source order."""
    if isinstance(node, Stmt):
        yield node
    for child in child_statements(node):
        yield from walk_statements(child)


def walk_expressions(expr: Expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, Binary):
        yield from walk_expressions(expr.left)
        yield from walk_expressions(expr.right)
    elif isinstance(expr, Unary):
        yield from walk_expressions(expr.operand)
    elif isinstance(expr, Ternary):
        yield from walk_expressions(expr.cond)
        yield from walk_expressions(expr.if_true)
        yield from walk_expressions(expr.if_false)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expressions(arg)
    elif isinstance(expr, MethodCall):
        yield from walk_expressions(expr.receiver)
        for arg in expr.args:
            yield from walk_expressions(arg)
    elif isinstance(expr, FieldAccess):
        yield from walk_expressions(expr.receiver)
    elif isinstance(expr, New):
        for arg in expr.args:
            yield from walk_expressions(arg)


def statement_expressions(stmt: Stmt) -> list[Expr]:
    """Return the expressions directly embedded in a statement."""
    if isinstance(stmt, Assign):
        return [stmt.value]
    if isinstance(stmt, ExprStmt):
        return [stmt.expr]
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, ForEach):
        return [stmt.iterable]
    if isinstance(stmt, While):
        return [stmt.cond]
    if isinstance(stmt, Return) and stmt.value is not None:
        return [stmt.value]
    return []
