"""Recursive-descent parser for MiniJava.

The grammar mirrors the fragments shown throughout the paper: untyped (or
optionally typed) assignments, ``if``/``else``, cursor loops, ``while``
loops, classic ``for`` loops (desugared to ``while``), ``try``/``catch``,
``return``/``break``/``continue``, and expression statements.  Types, when
present (``List<Board> boards = ...``), are recorded on the assignment but
otherwise ignored, matching the paper's presentation.
"""

from __future__ import annotations

from .ast_nodes import (
    Assign,
    Binary,
    Block,
    BoolLit,
    Break,
    Call,
    Continue,
    Expr,
    ExprStmt,
    FieldAccess,
    FloatLit,
    ForEach,
    FunctionDef,
    If,
    IntLit,
    MethodCall,
    Name,
    New,
    NullLit,
    Program,
    Return,
    Stmt,
    StringLit,
    Ternary,
    TryCatch,
    Unary,
    While,
    number_statements,
)
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenType

_ASSIGN_OPS = {
    TokenType.ASSIGN: "=",
    TokenType.PLUS_ASSIGN: "+=",
    TokenType.MINUS_ASSIGN: "-=",
    TokenType.STAR_ASSIGN: "*=",
    TokenType.SLASH_ASSIGN: "/=",
}

_AUGMENTED_BINOP = {"+=": "+", "-=": "-", "*=": "*", "/=": "/"}


class Parser:
    """Parses a token stream into a :class:`Program`."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, token_type: TokenType) -> bool:
        return self._peek().type is token_type

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect(self, token_type: TokenType) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ParseError(
                f"expected {token_type.value!r}, found {token.value!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _match(self, token_type: TokenType) -> Token | None:
        if self._at(token_type):
            return self._advance()
        return None

    # ------------------------------------------------------------------
    # Top level

    def parse_program(self) -> Program:
        functions = []
        while not self._at(TokenType.EOF):
            functions.append(self._parse_function())
        program = Program(functions=functions)
        number_statements(program)
        return program

    def _parse_function(self) -> FunctionDef:
        # Optional return type: `int f(...)` or bare `f(...)`.
        name_token = self._expect(TokenType.IDENT)
        name = name_token.value
        if self._at(TokenType.IDENT):
            name = self._advance().value  # first ident was a return type
        self._expect(TokenType.LPAREN)
        params = []
        if not self._at(TokenType.RPAREN):
            params.append(self._parse_param())
            while self._match(TokenType.COMMA):
                params.append(self._parse_param())
        self._expect(TokenType.RPAREN)
        body = self._parse_block()
        return FunctionDef(name=name, params=params, body=body, line=name_token.line, col=name_token.column)

    def _parse_param(self) -> str:
        name = self._expect(TokenType.IDENT).value
        self._skip_generics()
        if self._at(TokenType.IDENT):
            name = self._advance().value  # the first ident was a type
        return name

    # ------------------------------------------------------------------
    # Statements

    def _parse_block(self) -> Block:
        brace = self._expect(TokenType.LBRACE)
        statements = []
        while not self._at(TokenType.RBRACE):
            statements.append(self._parse_statement())
        self._expect(TokenType.RBRACE)
        return Block(statements=statements, line=brace.line, col=brace.column)

    def _parse_statement(self) -> Stmt:
        token = self._peek()
        if token.type is TokenType.LBRACE:
            return self._parse_block()
        if token.type is TokenType.IF:
            return self._parse_if()
        if token.type is TokenType.FOR:
            return self._parse_for()
        if token.type is TokenType.WHILE:
            return self._parse_while()
        if token.type is TokenType.TRY:
            return self._parse_try()
        if token.type is TokenType.RETURN:
            self._advance()
            value = None
            if not self._at(TokenType.SEMI):
                value = self._parse_expression()
            self._expect(TokenType.SEMI)
            return Return(value=value, line=token.line, col=token.column)
        if token.type is TokenType.BREAK:
            self._advance()
            self._expect(TokenType.SEMI)
            return Break(line=token.line, col=token.column)
        if token.type is TokenType.CONTINUE:
            self._advance()
            self._expect(TokenType.SEMI)
            return Continue(line=token.line, col=token.column)
        return self._parse_simple_statement()

    def _parse_if(self) -> If:
        token = self._expect(TokenType.IF)
        self._expect(TokenType.LPAREN)
        cond = self._parse_expression()
        self._expect(TokenType.RPAREN)
        then_body = self._as_block(self._parse_statement())
        else_body = None
        if self._match(TokenType.ELSE):
            else_body = self._as_block(self._parse_statement())
        return If(cond=cond, then_body=then_body, else_body=else_body, line=token.line, col=token.column)

    def _parse_for(self) -> Stmt:
        token = self._expect(TokenType.FOR)
        self._expect(TokenType.LPAREN)
        # Distinguish `for (t : coll)` / `for (Type t : coll)` from classic
        # `for (init; cond; update)` by scanning ahead for a `:` before `;`.
        if self._foreach_ahead():
            var = self._expect(TokenType.IDENT).value
            self._skip_generics()
            if self._at(TokenType.IDENT):
                var = self._advance().value  # first ident was a type
            self._expect(TokenType.COLON)
            iterable = self._parse_expression()
            self._expect(TokenType.RPAREN)
            body = self._as_block(self._parse_statement())
            return ForEach(var=var, iterable=iterable, body=body, line=token.line, col=token.column)
        return self._parse_classic_for(token)

    def _foreach_ahead(self) -> bool:
        offset = 0
        depth = 0
        while True:
            tok = self._peek(offset)
            if tok.type in (TokenType.SEMI, TokenType.EOF):
                return False
            if tok.type is TokenType.COLON and depth == 0:
                return True
            if tok.type in (TokenType.LPAREN, TokenType.LT):
                depth += 1
            elif tok.type in (TokenType.RPAREN, TokenType.GT):
                if tok.type is TokenType.RPAREN and depth == 0:
                    return False
                depth = max(0, depth - 1)
            offset += 1

    def _parse_classic_for(self, token: Token) -> Block:
        """Desugar ``for (init; cond; update) body`` into init + while."""
        init: Stmt | None = None
        if not self._at(TokenType.SEMI):
            init = self._parse_simple_statement(consume_semi=False)
        self._expect(TokenType.SEMI)
        cond: Expr = BoolLit(True, line=token.line, col=token.column)
        if not self._at(TokenType.SEMI):
            cond = self._parse_expression()
        self._expect(TokenType.SEMI)
        update: Stmt | None = None
        if not self._at(TokenType.RPAREN):
            update = self._parse_simple_statement(consume_semi=False)
        self._expect(TokenType.RPAREN)
        body = self._as_block(self._parse_statement())
        if update is not None:
            body.statements.append(update)
        loop = While(cond=cond, body=body, line=token.line, col=token.column)
        statements: list[Stmt] = []
        if init is not None:
            statements.append(init)
        statements.append(loop)
        return Block(statements=statements, line=token.line, col=token.column)

    def _parse_while(self) -> While:
        token = self._expect(TokenType.WHILE)
        self._expect(TokenType.LPAREN)
        cond = self._parse_expression()
        self._expect(TokenType.RPAREN)
        body = self._as_block(self._parse_statement())
        return While(cond=cond, body=body, line=token.line, col=token.column)

    def _parse_try(self) -> TryCatch:
        token = self._expect(TokenType.TRY)
        try_body = self._parse_block()
        catch_var = None
        catch_body = None
        finally_body = None
        if self._match(TokenType.CATCH):
            self._expect(TokenType.LPAREN)
            catch_var = self._expect(TokenType.IDENT).value
            if self._at(TokenType.IDENT):
                catch_var = self._advance().value  # first ident was a type
            self._expect(TokenType.RPAREN)
            catch_body = self._parse_block()
        if self._match(TokenType.FINALLY):
            finally_body = self._parse_block()
        return TryCatch(
            try_body=try_body,
            catch_var=catch_var,
            catch_body=catch_body,
            finally_body=finally_body,
            line=token.line,
            col=token.column,
        )

    def _parse_simple_statement(self, consume_semi: bool = True) -> Stmt:
        token = self._peek()
        stmt = self._parse_assignment_or_expr(token)
        if consume_semi:
            self._expect(TokenType.SEMI)
        return stmt

    def _parse_assignment_or_expr(self, token: Token) -> Stmt:
        declared_type = self._maybe_consume_type_prefix()
        if self._at(TokenType.IDENT):
            next_type = self._peek(1).type
            if next_type in _ASSIGN_OPS:
                target = self._advance().value
                op = _ASSIGN_OPS[self._advance().type]
                value = self._parse_expression()
                if op != "=":
                    value = Binary(
                        op=_AUGMENTED_BINOP[op],
                        left=Name(target, line=token.line, col=token.column),
                        right=value,
                        line=token.line,
                        col=token.column,
                    )
                return Assign(
                    target=target,
                    value=value,
                    declared_type=declared_type,
                    line=token.line,
                    col=token.column,
                )
            if next_type in (TokenType.PLUS_PLUS, TokenType.MINUS_MINUS):
                target = self._advance().value
                op_token = self._advance()
                binop = "+" if op_token.type is TokenType.PLUS_PLUS else "-"
                value = Binary(
                    op=binop,
                    left=Name(target, line=token.line, col=token.column),
                    right=IntLit(1, line=token.line, col=token.column),
                    line=token.line,
                    col=token.column,
                )
                return Assign(target=target, value=value, line=token.line, col=token.column)
        if declared_type is not None:
            raise ParseError(
                "expected assignment after type declaration", token.line, token.column
            )
        expr = self._parse_expression()
        return ExprStmt(expr=expr, line=token.line, col=token.column)

    def _maybe_consume_type_prefix(self) -> str | None:
        """Consume ``Type`` / ``Type<...>`` when followed by ``ident =``."""
        if not self._at(TokenType.IDENT):
            return None
        start = self._pos
        type_name = self._advance().value
        self._skip_generics()
        if self._at(TokenType.IDENT) and self._peek(1).type in _ASSIGN_OPS:
            return type_name
        self._pos = start
        return None

    def _skip_generics(self) -> None:
        """Skip a Java generic suffix like ``<Board>`` or ``<K, List<V>>``."""
        if not self._at(TokenType.LT):
            return
        start = self._pos
        depth = 0
        while True:
            tok = self._peek()
            if tok.type is TokenType.LT:
                depth += 1
            elif tok.type is TokenType.GT:
                depth -= 1
                if depth == 0:
                    self._advance()
                    return
            elif tok.type in (
                TokenType.EOF,
                TokenType.SEMI,
                TokenType.LPAREN,
                TokenType.LBRACE,
            ):
                self._pos = start  # not generics after all (e.g. `a < b`)
                return
            self._advance()

    @staticmethod
    def _as_block(stmt: Stmt) -> Block:
        if isinstance(stmt, Block):
            return stmt
        return Block(statements=[stmt], line=stmt.line, col=stmt.col)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)

    def _parse_expression(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        cond = self._parse_or()
        if self._match(TokenType.QUESTION):
            if_true = self._parse_expression()
            self._expect(TokenType.COLON)
            if_false = self._parse_expression()
            return Ternary(cond=cond, if_true=if_true, if_false=if_false, line=cond.line, col=cond.col)
        return cond

    def _parse_or(self) -> Expr:
        expr = self._parse_and()
        while self._at(TokenType.OR):
            self._advance()
            expr = Binary(op="||", left=expr, right=self._parse_and(), line=expr.line, col=expr.col)
        return expr

    def _parse_and(self) -> Expr:
        expr = self._parse_equality()
        while self._at(TokenType.AND):
            self._advance()
            expr = Binary(op="&&", left=expr, right=self._parse_equality(), line=expr.line, col=expr.col)
        return expr

    def _parse_equality(self) -> Expr:
        expr = self._parse_relational()
        while self._peek().type in (TokenType.EQ, TokenType.NEQ):
            op = self._advance().value
            expr = Binary(op=op, left=expr, right=self._parse_relational(), line=expr.line, col=expr.col)
        return expr

    def _parse_relational(self) -> Expr:
        expr = self._parse_additive()
        while self._peek().type in (TokenType.LT, TokenType.GT, TokenType.LE, TokenType.GE):
            op = self._advance().value
            expr = Binary(op=op, left=expr, right=self._parse_additive(), line=expr.line, col=expr.col)
        return expr

    def _parse_additive(self) -> Expr:
        expr = self._parse_multiplicative()
        while self._peek().type in (TokenType.PLUS, TokenType.MINUS):
            op = self._advance().value
            expr = Binary(
                op=op, left=expr, right=self._parse_multiplicative(), line=expr.line, col=expr.col
            )
        return expr

    def _parse_multiplicative(self) -> Expr:
        expr = self._parse_unary()
        while self._peek().type in (TokenType.STAR, TokenType.SLASH, TokenType.PERCENT):
            op = self._advance().value
            expr = Binary(op=op, left=expr, right=self._parse_unary(), line=expr.line, col=expr.col)
        return expr

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.type in (TokenType.MINUS, TokenType.NOT):
            self._advance()
            return Unary(op=token.value, operand=self._parse_unary(), line=token.line, col=token.column)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self._at(TokenType.DOT):
            self._advance()
            member = self._expect(TokenType.IDENT).value
            if self._at(TokenType.LPAREN):
                args = self._parse_args()
                expr = MethodCall(receiver=expr, method=member, args=args, line=expr.line, col=expr.col)
            else:
                expr = FieldAccess(receiver=expr, field=member, line=expr.line, col=expr.col)
        return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.INT:
            self._advance()
            return IntLit(int(token.value), line=token.line, col=token.column)
        if token.type is TokenType.FLOAT:
            self._advance()
            return FloatLit(float(token.value), line=token.line, col=token.column)
        if token.type is TokenType.STRING:
            self._advance()
            return StringLit(token.value, line=token.line, col=token.column)
        if token.type is TokenType.TRUE:
            self._advance()
            return BoolLit(True, line=token.line, col=token.column)
        if token.type is TokenType.FALSE:
            self._advance()
            return BoolLit(False, line=token.line, col=token.column)
        if token.type is TokenType.NULL:
            self._advance()
            return NullLit(line=token.line, col=token.column)
        if token.type is TokenType.NEW:
            self._advance()
            class_name = self._expect(TokenType.IDENT).value
            self._skip_generics()
            args = self._parse_args() if self._at(TokenType.LPAREN) else []
            return New(class_name=class_name, args=args, line=token.line, col=token.column)
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expression()
            self._expect(TokenType.RPAREN)
            return expr
        if token.type is TokenType.IDENT:
            self._advance()
            if self._at(TokenType.LPAREN):
                args = self._parse_args()
                return Call(func=token.value, args=args, line=token.line, col=token.column)
            return Name(ident=token.value, line=token.line, col=token.column)
        raise ParseError(f"unexpected token {token.value!r}", token.line, token.column)

    def _parse_args(self) -> list[Expr]:
        self._expect(TokenType.LPAREN)
        args = []
        if not self._at(TokenType.RPAREN):
            args.append(self._parse_expression())
            while self._match(TokenType.COMMA):
                args.append(self._parse_expression())
        self._expect(TokenType.RPAREN)
        return args


def parse_program(source: str) -> Program:
    """Parse MiniJava source into a numbered :class:`Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_function(source: str) -> FunctionDef:
    """Parse source containing a single function and return it."""
    program = parse_program(source)
    if len(program.functions) != 1:
        raise ParseError(
            f"expected exactly one function, found {len(program.functions)}"
        )
    return program.functions[0]


def parse_statements(source: str) -> Block:
    """Parse a bare statement list (no enclosing function) into a block."""
    wrapped = "void __snippet__() {\n" + source + "\n}"
    return parse_function(wrapped).body
