"""Pretty-printer that turns MiniJava ASTs back into source text.

Used by the program rewriter (Section 5.2 of the paper) to emit the
transformed program, and by tests to round-trip sources through the parser.
"""

from __future__ import annotations

from .ast_nodes import (
    Assign,
    Binary,
    Block,
    BoolLit,
    Break,
    Call,
    Continue,
    Expr,
    ExprStmt,
    FieldAccess,
    FloatLit,
    ForEach,
    FunctionDef,
    If,
    IntLit,
    MethodCall,
    Name,
    New,
    NullLit,
    Program,
    Return,
    Stmt,
    StringLit,
    Ternary,
    TryCatch,
    Unary,
    While,
)

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    ">": 4,
    "<=": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def unparse_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression, parenthesising only where precedence requires."""
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, FloatLit):
        return repr(expr.value)
    if isinstance(expr, StringLit):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'
    if isinstance(expr, BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, NullLit):
        return "null"
    if isinstance(expr, Name):
        return expr.ident
    if isinstance(expr, Binary):
        prec = _PRECEDENCE.get(expr.op, 5)
        left = unparse_expr(expr.left, prec)
        right = unparse_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, Unary):
        operand = unparse_expr(expr.operand, 7)
        if operand.startswith(expr.op):
            # `--x` would lex as a decrement token; keep the grouping.
            operand = f"({operand})"
        return f"{expr.op}{operand}"
    if isinstance(expr, Ternary):
        cond = unparse_expr(expr.cond, 1)
        if_true = unparse_expr(expr.if_true)
        if_false = unparse_expr(expr.if_false)
        text = f"{cond} ? {if_true} : {if_false}"
        if parent_prec > 0:
            return f"({text})"
        return text
    if isinstance(expr, Call):
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, MethodCall):
        receiver = unparse_expr(expr.receiver, 8)
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{receiver}.{expr.method}({args})"
    if isinstance(expr, FieldAccess):
        receiver = unparse_expr(expr.receiver, 8)
        return f"{receiver}.{expr.field}"
    if isinstance(expr, New):
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"new {expr.class_name}({args})"
    raise TypeError(f"cannot unparse expression {expr!r}")


def unparse_stmt(stmt: Stmt, indent: int = 0) -> str:
    """Render a statement (recursively) with the given indentation level."""
    pad = "    " * indent
    if isinstance(stmt, Assign):
        return f"{pad}{stmt.target} = {unparse_expr(stmt.value)};"
    if isinstance(stmt, ExprStmt):
        return f"{pad}{unparse_expr(stmt.expr)};"
    if isinstance(stmt, Block):
        lines = [f"{pad}{{"]
        for child in stmt.statements:
            lines.append(unparse_stmt(child, indent + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if isinstance(stmt, If):
        lines = [f"{pad}if ({unparse_expr(stmt.cond)}) {{"]
        for child in stmt.then_body.statements:
            lines.append(unparse_stmt(child, indent + 1))
        if stmt.else_body is not None:
            lines.append(f"{pad}}} else {{")
            for child in stmt.else_body.statements:
                lines.append(unparse_stmt(child, indent + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if isinstance(stmt, ForEach):
        lines = [f"{pad}for ({stmt.var} : {unparse_expr(stmt.iterable)}) {{"]
        for child in stmt.body.statements:
            lines.append(unparse_stmt(child, indent + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if isinstance(stmt, While):
        lines = [f"{pad}while ({unparse_expr(stmt.cond)}) {{"]
        for child in stmt.body.statements:
            lines.append(unparse_stmt(child, indent + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if isinstance(stmt, Return):
        if stmt.value is None:
            return f"{pad}return;"
        return f"{pad}return {unparse_expr(stmt.value)};"
    if isinstance(stmt, Break):
        return f"{pad}break;"
    if isinstance(stmt, Continue):
        return f"{pad}continue;"
    if isinstance(stmt, TryCatch):
        lines = [f"{pad}try {{"]
        for child in stmt.try_body.statements:
            lines.append(unparse_stmt(child, indent + 1))
        if stmt.catch_body is not None:
            lines.append(f"{pad}}} catch ({stmt.catch_var or 'e'}) {{")
            for child in stmt.catch_body.statements:
                lines.append(unparse_stmt(child, indent + 1))
        if stmt.finally_body is not None:
            lines.append(f"{pad}}} finally {{")
            for child in stmt.finally_body.statements:
                lines.append(unparse_stmt(child, indent + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    raise TypeError(f"cannot unparse statement {stmt!r}")


def unparse_function(func: FunctionDef) -> str:
    """Render a full function definition."""
    params = ", ".join(func.params)
    lines = [f"{func.name}({params}) {{"]
    for stmt in func.body.statements:
        lines.append(unparse_stmt(stmt, 1))
    lines.append("}")
    return "\n".join(lines)


def unparse_program(program: Program) -> str:
    """Render a full program."""
    return "\n\n".join(unparse_function(f) for f in program.functions)
