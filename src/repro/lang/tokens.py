"""Token definitions for the MiniJava front end.

MiniJava is the Java-like subset analysed throughout the paper: untyped
assignments, ``if``/``else``, cursor loops (``for (t : coll)`` and
``while (rs.next())``), method calls, and query execution calls.  The paper
itself elides variable types "for ease of presentation"; MiniJava does the
same, while optionally tolerating Java-style type prefixes on declarations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`repro.lang.lexer.Lexer`."""

    # Literals and identifiers.
    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"
    IDENT = "IDENT"

    # Keywords.
    IF = "if"
    ELSE = "else"
    FOR = "for"
    WHILE = "while"
    RETURN = "return"
    BREAK = "break"
    CONTINUE = "continue"
    TRUE = "true"
    FALSE = "false"
    NULL = "null"
    NEW = "new"
    TRY = "try"
    CATCH = "catch"
    FINALLY = "finally"

    # Punctuation and operators.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    COLON = ":"
    QUESTION = "?"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NEQ = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"

    EOF = "EOF"


#: Reserved words mapped to their dedicated token types.
KEYWORDS = {
    "if": TokenType.IF,
    "else": TokenType.ELSE,
    "for": TokenType.FOR,
    "while": TokenType.WHILE,
    "return": TokenType.RETURN,
    "break": TokenType.BREAK,
    "continue": TokenType.CONTINUE,
    "true": TokenType.TRUE,
    "false": TokenType.FALSE,
    "null": TokenType.NULL,
    "new": TokenType.NEW,
    "try": TokenType.TRY,
    "catch": TokenType.CATCH,
    "finally": TokenType.FINALLY,
}

#: Multi-character operators, longest first so the lexer can match greedily.
MULTI_CHAR_OPERATORS = [
    ("==", TokenType.EQ),
    ("!=", TokenType.NEQ),
    ("<=", TokenType.LE),
    (">=", TokenType.GE),
    ("&&", TokenType.AND),
    ("||", TokenType.OR),
    ("+=", TokenType.PLUS_ASSIGN),
    ("-=", TokenType.MINUS_ASSIGN),
    ("*=", TokenType.STAR_ASSIGN),
    ("/=", TokenType.SLASH_ASSIGN),
    ("++", TokenType.PLUS_PLUS),
    ("--", TokenType.MINUS_MINUS),
]

#: Single-character operators and punctuation.
SINGLE_CHAR_OPERATORS = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ";": TokenType.SEMI,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    ":": TokenType.COLON,
    "?": TokenType.QUESTION,
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "!": TokenType.NOT,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source location."""

    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"
