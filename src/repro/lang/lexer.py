"""Hand-rolled lexer for MiniJava.

The calibration notes flag ``javalang`` as too weak for reliable analysis, so
the front end is written from scratch.  The lexer is a straightforward
single-pass scanner producing :class:`~repro.lang.tokens.Token` objects; it
supports ``//`` and ``/* */`` comments, decimal integer and floating point
literals, and double-quoted strings with the usual escape sequences.
"""

from __future__ import annotations

from .errors import LexError
from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "'": "'", "\\": "\\"}


class Lexer:
    """Tokenises MiniJava source text."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Return the full token stream, terminated by an EOF token."""
        tokens = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    # ------------------------------------------------------------------
    # Scanning machinery

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", self._line, self._column)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        line, column = self._line, self._column
        if self._pos >= len(self._source):
            return Token(TokenType.EOF, "", line, column)

        char = self._peek()
        if char.isdigit():
            return self._lex_number(line, column)
        if char.isalpha() or char == "_":
            return self._lex_identifier(line, column)
        if char == '"':
            return self._lex_string(line, column)

        for text, token_type in MULTI_CHAR_OPERATORS:
            if self._source.startswith(text, self._pos):
                self._advance(len(text))
                return Token(token_type, text, line, column)
        if char in SINGLE_CHAR_OPERATORS:
            self._advance()
            return Token(SINGLE_CHAR_OPERATORS[char], char, line, column)

        raise LexError(f"unexpected character {char!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self._pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self._source[start : self._pos]
        token_type = TokenType.FLOAT if is_float else TokenType.INT
        return Token(token_type, text, line, column)

    def _lex_identifier(self, line: int, column: int) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start : self._pos]
        token_type = KEYWORDS.get(text, TokenType.IDENT)
        return Token(token_type, text, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts = []
        while True:
            char = self._peek()
            if not char or char == "\n":
                raise LexError("unterminated string literal", line, column)
            if char == '"':
                self._advance()
                return Token(TokenType.STRING, "".join(parts), line, column)
            if char == "\\":
                self._advance()
                escape = self._peek()
                parts.append(_ESCAPES.get(escape, escape))
                self._advance()
            else:
                parts.append(char)
                self._advance()


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper around :class:`Lexer`."""
    return Lexer(source).tokenize()
