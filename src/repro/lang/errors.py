"""Errors raised by the MiniJava front end."""

from __future__ import annotations


class MiniJavaError(Exception):
    """Base class for all front-end errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class LexError(MiniJavaError):
    """Raised when the lexer encounters an unrecognised character."""


class ParseError(MiniJavaError):
    """Raised when the parser encounters an unexpected token."""
