"""Command-line interface: ``python -m repro``.

Subcommands:

``extract``   run EqSQL on a source file (MiniJava or Python, auto-detected
              by suffix) and print the extracted SQL (optionally the
              rewritten program);
``scan``      batch-extract from every function of every source file
              under a directory, with a persistent result cache and a
              ``-j N`` worker pool;
``lint``      run the soundness/anti-pattern checker (coded EQ1xx/EQ2xx/
              EQ3xx diagnostics) over a directory, no schema needed;
``analyze``   dump the precision layer's proven facts (SSA form, SCCP
              constants, dead branches, points-to sets) for one
              ``FILE::function`` target;
``demo``      the paper's Figure 2 → Figure 3(d) walk-through;
``difftest``  the differential equivalence fuzzer (random programs vs.
              their extracted-SQL rewrites; failures are shrunk and filed
              as corpus repros).

Schemas are given either as a JSON file (``--schema``) of the form::

    {"board": {"columns": ["id", "rnd_id", "p1"], "key": ["id"]}}

or inline with repeated ``--table name:col1,col2[:keycol]`` options.
"""

from __future__ import annotations

import argparse
import json
import sys

from .algebra import Catalog
from .analysis.cli import add_analyze_parser
from .batch.cli import add_scan_parser, build_catalog
from .core import ExtractOptions, extract_sql, optimize_program
from .frontends import available_frontends, detect_frontend, get_frontend
from .lang import unparse_program
from .lint.cli import add_lint_parser


def _build_catalog(args) -> Catalog:
    return build_catalog(args.schema, args.table)


def _cmd_extract(args) -> int:
    catalog = _build_catalog(args)
    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    profile = args.profile
    if profile is None and args.explain_rewrites:
        profile = "local"  # --explain-rewrites alone: use the default profile
    frontend = args.frontend
    if frontend is None:
        # Auto-detect from the file suffix; stdin falls back to the default.
        frontend = detect_frontend(args.file) if args.file != "-" else None
    try:
        options = ExtractOptions(
            dialect=args.dialect,
            policy=args.policy,
            ordering_matters=not args.unordered,
            allow_temp_tables=args.temp_tables,
            profile=profile,
            **({"frontend": frontend} if frontend is not None else {}),
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.rewrite:
        report = optimize_program(source, args.function, catalog, options=options)
    else:
        report = extract_sql(source, args.function, catalog, options=options)

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0 if report.status != "failed" else 1

    print(f"function: {args.function}")
    print(f"status:   {report.status}")
    print(f"time:     {report.extraction_time_ms:.2f} ms")
    for name, extraction in report.variables.items():
        print(f"\nvariable {name!r}: {extraction.status}")
        if extraction.sql:
            print(f"  SQL: {extraction.sql}")
        if extraction.reason:
            print(f"  reason: {extraction.reason}")
        for diag in extraction.diagnostics:
            print(f"  {diag.render(args.file if args.file != '-' else '')}")
        if extraction.rule_trace:
            print(f"  rules: {' → '.join(extraction.rule_trace)}")
    function_diags = [d for d in report.diagnostics]
    if function_diags:
        print("\ndiagnostics:")
        for diag in function_diags:
            print(f"  {diag.render(args.file if args.file != '-' else '')}")
    for consolidation in report.consolidations:
        print(
            f"\nconsolidated loop @{consolidation.loop_sid}: "
            f"{consolidation.queries_merged} queries → 1"
        )
        print(f"  SQL: {consolidation.sql}")
    if args.explain_rewrites and report.rewrite_plan is not None:
        from .rewrites import render_explain

        print()
        print(render_explain(report.rewrite_plan))
    if args.rewrite and report.rewritten is not None:
        print("\n--- rewritten program ---")
        print(get_frontend(report.frontend).unparse(report.rewritten))
    return 0 if report.status != "failed" else 1


def _cmd_demo(_args) -> int:
    from .workloads import FIND_MAX_SCORE, matoso_catalog

    report = optimize_program(FIND_MAX_SCORE, "findMaxScore", matoso_catalog())
    print("source (paper Figure 2):")
    print(FIND_MAX_SCORE)
    print("extracted SQL (Figure 3d):")
    print(" ", report.variables["scoreMax"].sql)
    print("\nrewritten program:")
    print(unparse_program(report.rewritten))
    return 0


def _cmd_difftest(args) -> int:
    from .difftest import run_difftest

    stats = run_difftest(
        seed=args.seed,
        iters=args.iters,
        budget_s=args.budget_s,
        corpus_dir=args.corpus_dir,
        do_shrink=not args.no_shrink,
        log=print,
    )
    print(stats.summary())
    for finding in stats.findings:
        case = finding.minimized or finding.case
        print(f"\n--- {finding.verdict.kind} (case {stats.seed}:{case.case_id}) ---")
        print(finding.verdict.detail)
        print("program:")
        print(case.source)
        print(f"rows: {case.rows}")
    return 1 if stats.failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EqSQL: extract equivalent SQL from imperative code (SIGMOD'16)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    extract = sub.add_parser("extract", help="extract SQL from a source file")
    extract.add_argument("file", help="source file ('-' for stdin)")
    extract.add_argument("--function", "-f", required=True)
    extract.add_argument("--schema", help="JSON schema file")
    extract.add_argument(
        "--frontend",
        default=None,
        choices=list(available_frontends()),
        help="language frontend parsing the file "
        "(default: auto-detect from the file suffix; stdin: minijava)",
    )
    extract.add_argument(
        "--table", action="append", help="inline table: name:col1,col2[:keycol]"
    )
    extract.add_argument(
        "--dialect",
        default="repro",
        choices=["repro", "postgres", "mysql", "sqlserver", "ansi"],
    )
    extract.add_argument("--rewrite", action="store_true", help="print the rewritten program")
    extract.add_argument(
        "--policy", default="heuristic", choices=["heuristic", "cost"]
    )
    extract.add_argument(
        "--unordered",
        action="store_true",
        help="result ordering irrelevant (keyword-search mode)",
    )
    extract.add_argument(
        "--temp-tables",
        action="store_true",
        help="allow shipping non-query collections as temporary tables",
    )
    extract.add_argument(
        "--profile",
        default=None,
        help="deployment profile for cost-based rewrite selection "
        "(built-ins: local, wan)",
    )
    extract.add_argument(
        "--explain-rewrites",
        action="store_true",
        help="print the per-site alternative space with cost breakdowns "
        "(implies --profile local when no profile is given)",
    )
    extract.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    extract.set_defaults(func=_cmd_extract)

    add_scan_parser(sub)
    add_lint_parser(sub)
    add_analyze_parser(sub)

    demo = sub.add_parser("demo", help="run the Figure 2 walk-through")
    demo.set_defaults(func=_cmd_demo)

    difftest = sub.add_parser(
        "difftest", help="differential equivalence fuzzer (Theorem 1)"
    )
    difftest.add_argument("--seed", type=int, default=0)
    difftest.add_argument("--iters", type=int, default=200)
    difftest.add_argument(
        "--budget-s",
        type=float,
        default=None,
        help="stop after this many seconds even if --iters cases have not run",
    )
    difftest.add_argument(
        "--corpus-dir",
        default=None,
        help="write shrunk failing cases to this directory as JSON repros",
    )
    difftest.add_argument(
        "--no-shrink", action="store_true", help="skip delta-debugging of failures"
    )
    difftest.set_defaults(func=_cmd_difftest)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
